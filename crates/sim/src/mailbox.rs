//! Per-round message store.
//!
//! In a complete network most traffic is broadcast, so the mailbox stores
//! one *row* per sender: an optional shared broadcast message (`base`,
//! one copy for all receivers) plus a dense per-receiver deviation lane
//! that is only materialized when a sender deviates from pure broadcast —
//! equivocation, point-to-point inserts from the delivery stage, or
//! single receivers knocked out of a broadcast by the network. Receivers
//! resolve their inbox lazily without allocating.
//!
//! # Memory layout and complexity
//!
//! * A pure broadcast is one `M` and a flag — no per-receiver clones,
//!   ever. The delivery stage knocks individual receivers out of a
//!   broadcast ([`RoundMailbox::knock_out`]), installs a pre-routed
//!   broadcast row ([`RoundMailbox::set_broadcast_except`]), or layers a
//!   broadcast under already-delivered messages
//!   ([`RoundMailbox::merge_broadcast_except`]) without materializing
//!   `n` copies of the message.
//! * Deviation lanes live in **one flat `n × n` cell arena** per
//!   mailbox (`lanes[sender * n + receiver]`), allocated at most once
//!   and reused for the life of the mailbox: resolution is an array
//!   read, never a hash lookup; iteration order is receiver order —
//!   deterministic across processes by construction (the former
//!   `HashMap` slot was only deterministic per-process); and the hot
//!   loops walk a single stable allocation instead of `n` heap-scattered
//!   maps. A row's lane is stamped back to `Inherit` only when the row
//!   actually deviates in that round.
//! * Message/bit counters are maintained incrementally on every
//!   mutation, so [`RoundMailbox::message_count`] and
//!   [`RoundMailbox::total_bits`] are O(1) reads and
//!   [`RoundMailbox::max_edge_bits`] is O(1) when no mutation lowered a
//!   row maximum (the engine's wire-side usage) and O(rows touched)
//!   otherwise.
//! * [`RoundMailbox::reset`] clears the mailbox while keeping every
//!   allocation (rows and the lane arena), so the engine and the
//!   delivery stage can pool mailboxes across rounds: after warm-up the
//!   message plane allocates nothing per round.
//!
//! # Counting convention
//!
//! `message_count`/`total_bits` count point-to-point wire messages. A
//! node's *self-copy of its own broadcast* is local and free (the paper
//! counts a broadcast as `n - 1` messages), so it is excluded; an
//! explicit point-to-point message a sender addresses to itself (via
//! [`Emission::PerRecipient`] or [`RoundMailbox::insert`]) is counted,
//! exactly as the pre-dense implementation counted it.

use crate::id::NodeId;
use crate::message::{Emission, Message};

/// One receiver's deviation from the row's broadcast base.
#[derive(Debug, Clone)]
enum Cell<M> {
    /// No deviation: the receiver gets the row's `base` (or nothing if
    /// the row has no base).
    Inherit,
    /// The receiver gets nothing, even if the row has a base (a
    /// broadcast knock-out).
    Knocked,
    /// The receiver gets this specific message instead of the base.
    Msg(M),
}

/// One sender's contribution to the round. The per-receiver deviation
/// lane lives in the mailbox's flat arena; `dense` says whether this
/// row's lane is live this round.
#[derive(Debug, Clone)]
struct Row<M> {
    base: Option<M>,
    /// Whether the row's lane slice is live (stamped this round).
    dense: bool,
    /// Countable messages in this row (see the counting convention).
    count: usize,
    /// Total bits of the counted messages.
    bits: usize,
    /// Largest message present in this row, in bits. Exact unless
    /// `max_dirty`.
    max_bits: usize,
    /// Set when a mutation removed or shrank a message that may have
    /// been the row maximum; readers rescan the lane on demand.
    max_dirty: bool,
}

impl<M> Default for Row<M> {
    fn default() -> Self {
        Row {
            base: None,
            dense: false,
            count: 0,
            bits: 0,
            max_bits: 0,
            max_dirty: false,
        }
    }
}

impl<M: Message> Row<M> {
    /// Empties the row. If it was dense, its lane is stamped back to
    /// all-`Inherit` *now*, dropping any retained `Msg` payloads — the
    /// invariant is that a non-dense row's lane is always clean, which
    /// is what makes [`Row::ensure_dense`] O(1) and keeps pooled
    /// mailboxes from holding dead messages across rounds.
    fn clear(&mut self, lane: &mut [Cell<M>]) {
        if self.dense {
            lane.fill(Cell::Inherit);
        }
        self.base = None;
        self.dense = false;
        self.count = 0;
        self.bits = 0;
        self.max_bits = 0;
        self.max_dirty = false;
    }

    /// The message receiver `r` gets from this row, if any. `lane` is
    /// the row's arena slice (ignored unless the row is dense).
    fn effective<'a>(&'a self, lane: &'a [Cell<M>], r: usize) -> Option<&'a M> {
        if !self.dense {
            self.base.as_ref()
        } else {
            match &lane[r] {
                Cell::Inherit => self.base.as_ref(),
                Cell::Knocked => None,
                Cell::Msg(m) => Some(m),
            }
        }
    }

    /// `(counted, bits)` contribution of receiver `r` for a row owned by
    /// sender `me` — the base self-copy is free, explicit messages are
    /// not.
    fn contribution(&self, lane: &[Cell<M>], me: usize, r: usize) -> (bool, usize) {
        let via_base = !self.dense || matches!(lane[r], Cell::Inherit);
        match self.effective(lane, r) {
            None => (false, 0),
            Some(m) => {
                if via_base && r == me {
                    (false, 0)
                } else {
                    (true, m.bit_size())
                }
            }
        }
    }

    /// Marks the row's lane live. O(1): a non-dense row's lane is
    /// all-`Inherit` by invariant (stamped at [`Row::clear`] time and by
    /// the arena's initial fill).
    fn ensure_dense(&mut self, lane: &mut [Cell<M>]) {
        debug_assert!(
            self.dense || lane.iter().all(|c| matches!(c, Cell::Inherit)),
            "lane of a non-dense row must be clean"
        );
        let _ = lane;
        self.dense = true;
    }

    /// The exact row maximum, rescanning the lane if a removal dirtied
    /// the cached value.
    fn current_max(&self, lane: &[Cell<M>]) -> usize {
        if !self.max_dirty {
            return self.max_bits;
        }
        let base_bits = self.base.as_ref().map_or(0, Message::bit_size);
        let mut max = if self.base.is_some()
            && (!self.dense || lane.iter().any(|c| matches!(c, Cell::Inherit)))
        {
            base_bits
        } else {
            0
        };
        if self.dense {
            for c in lane {
                if let Cell::Msg(m) = c {
                    max = max.max(m.bit_size());
                }
            }
        }
        max
    }
}

/// All messages emitted in a single round, indexed by sender.
///
/// See the module docs for the memory layout, pooling contract, and
/// counting convention.
#[derive(Debug, Clone)]
pub struct RoundMailbox<M> {
    n: usize,
    rows: Vec<Row<M>>,
    /// Flat `n × n` deviation-cell arena (`sender * n + receiver`),
    /// allocated on first use and retained across [`RoundMailbox::reset`]
    /// while `n` is unchanged. Empty until some row deviates.
    lanes: Vec<Cell<M>>,
    count: usize,
    bits: usize,
    max_cache: usize,
    max_dirty: bool,
}

impl<M> Default for RoundMailbox<M> {
    /// An empty zero-node mailbox — the pooling placeholder. Call
    /// [`RoundMailbox::reset`] to size it before use.
    fn default() -> Self {
        RoundMailbox {
            n: 0,
            rows: Vec::new(),
            lanes: Vec::new(),
            count: 0,
            bits: 0,
            max_cache: 0,
            max_dirty: false,
        }
    }
}

impl<M: Message> RoundMailbox<M> {
    /// Creates an empty mailbox for an `n`-node network.
    pub fn new(n: usize) -> Self {
        let mut mb = Self::default();
        mb.reset(n);
        mb
    }

    /// Empties the mailbox and (re)sizes it for an `n`-node network,
    /// retaining every allocation — rows and the lane arena — so pooled
    /// mailboxes allocate nothing per round after warm-up.
    pub fn reset(&mut self, n: usize) {
        if n != self.n {
            // The arena layout depends on n; drop it and re-arm lazily
            // (which also drops every retained message in one free).
            self.lanes.clear();
            self.rows.truncate(n);
            for row in &mut self.rows {
                row.clear(&mut []);
            }
        } else {
            // Same size: clear rows against their lanes, so dense rows
            // drop their retained `Msg` payloads now.
            let stride = self.n;
            let RoundMailbox { rows, lanes, .. } = self;
            for (i, row) in rows.iter_mut().enumerate() {
                let lane = if lanes.is_empty() {
                    &mut [][..]
                } else {
                    &mut lanes[i * stride..(i + 1) * stride]
                };
                row.clear(lane);
            }
        }
        self.rows.resize_with(n, Row::default);
        self.n = n;
        self.count = 0;
        self.bits = 0;
        self.max_cache = 0;
        self.max_dirty = false;
    }

    /// Empties the mailbox, keeping its size and allocations.
    pub fn clear(&mut self) {
        self.reset(self.n);
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Materializes the flat lane arena (all-`Inherit`), if not yet
    /// allocated. One allocation for the life of the mailbox.
    fn alloc_lanes(&mut self) {
        if self.lanes.is_empty() {
            self.lanes.resize(self.n * self.n, Cell::Inherit);
        }
    }

    /// The arena slice of row `me` (empty if the arena is unallocated).
    fn lane(&self, me: usize) -> &[Cell<M>] {
        if self.lanes.is_empty() {
            &[]
        } else {
            &self.lanes[me * self.n..(me + 1) * self.n]
        }
    }

    /// Applies `edit` to row `me` and its lane slice (empty while the
    /// arena is unallocated — edits that materialize a lane must call
    /// [`RoundMailbox::alloc_lanes`] first), then folds the row's
    /// counter changes into the global counters.
    fn edit_row(&mut self, me: usize, edit: impl FnOnce(&mut Row<M>, &mut [Cell<M>], usize)) {
        let n = self.n;
        let RoundMailbox {
            rows,
            lanes,
            count,
            bits,
            max_cache,
            max_dirty,
            ..
        } = self;
        let row = &mut rows[me];
        let lane = if lanes.is_empty() {
            &mut [][..]
        } else {
            &mut lanes[me * n..(me + 1) * n]
        };
        *count -= row.count;
        *bits -= row.bits;
        let old_max = row.current_max(lane);
        edit(row, lane, n);
        *count += row.count;
        *bits += row.bits;
        if row.max_dirty || row.max_bits < old_max {
            // The row maximum may have shrunk (or is only an upper
            // bound); the global cache must be rebuilt on demand.
            *max_dirty = true;
        } else if !*max_dirty {
            *max_cache = (*max_cache).max(row.max_bits);
        }
    }

    /// Installs `emission` as `sender`'s contribution, replacing whatever
    /// was there (used both for honest emissions and for the adversary
    /// overriding a freshly-corrupted node's message).
    ///
    /// # Panics
    ///
    /// Panics if `sender` or any per-recipient receiver is out of range.
    pub fn set(&mut self, sender: NodeId, emission: Emission<M>) {
        let me = sender.index();
        match emission {
            Emission::Silent => self.silence(sender),
            Emission::Broadcast(m) => self.edit_row(me, |row, lane, n| {
                row.clear(lane);
                let bs = m.bit_size();
                row.count = n.saturating_sub(1);
                row.bits = bs * row.count;
                row.max_bits = bs;
                row.base = Some(m);
            }),
            Emission::PerRecipient(v) => {
                if v.is_empty() {
                    self.silence(sender);
                    return;
                }
                self.alloc_lanes();
                self.edit_row(me, |row, lane, _| {
                    row.clear(lane);
                    row.ensure_dense(lane);
                    for (to, m) in v {
                        // Later entries override earlier ones.
                        let bs = m.bit_size();
                        match std::mem::replace(&mut lane[to.index()], Cell::Msg(m)) {
                            Cell::Inherit | Cell::Knocked => {
                                row.count += 1;
                                row.bits += bs;
                            }
                            Cell::Msg(old) => {
                                row.bits += bs;
                                row.bits -= old.bit_size();
                                // The overridden duplicate may have held
                                // the running maximum; rescan lazily.
                                row.max_dirty = true;
                            }
                        }
                        row.max_bits = row.max_bits.max(bs);
                    }
                });
            }
        }
    }

    /// Removes `sender`'s contribution entirely.
    pub fn silence(&mut self, sender: NodeId) {
        self.edit_row(sender.index(), |row, lane, _| row.clear(lane));
    }

    /// Installs a broadcast of `msg` from `sender` that skips the
    /// receivers in `except` — the delivery stage's way of storing "this
    /// broadcast reached everyone but these" as one shared copy instead
    /// of `n - 1` clones. Duplicate entries in `except` are tolerated;
    /// `sender`'s free self-copy is unaffected unless explicitly listed.
    ///
    /// Replaces whatever the row held. Cost: O(`except.len()`) plus a
    /// one-off tag fill of the row's lane when `except` is non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or any entry of `except` is out of range.
    pub fn set_broadcast_except(&mut self, sender: NodeId, msg: M, except: &[u32]) {
        let me = sender.index();
        if except.is_empty() {
            return self.set(sender, Emission::Broadcast(msg));
        }
        self.alloc_lanes();
        self.edit_row(me, |row, lane, n| {
            row.clear(lane);
            row.ensure_dense(lane);
            let bs = msg.bit_size();
            row.max_bits = bs;
            row.count = n.saturating_sub(1);
            for &r in except {
                let cell = &mut lane[r as usize];
                if !matches!(cell, Cell::Knocked) {
                    *cell = Cell::Knocked;
                    if r as usize != me {
                        row.count -= 1;
                    }
                }
            }
            row.bits = bs * row.count;
            row.base = Some(msg);
        });
    }

    /// Layers a broadcast of `msg` from `sender` *under* the row's
    /// existing point-to-point messages: receivers with no message and no
    /// `except` entry now inherit the shared base (one copy, no clones);
    /// receivers that already hold a message keep it and are appended to
    /// `conflicts` (ascending) so the caller can re-route the fresh copy.
    /// The delivery stage uses this when older in-flight traffic has
    /// already landed on a broadcasting sender's row — the old message
    /// wins the link, exactly as in the flight queue's FIFO rule.
    ///
    /// `except` must be sorted ascending (duplicates are tolerated); the
    /// row must not already hold a broadcast base.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or any entry of `except` is out of range, or if
    /// the row already has a base.
    pub fn merge_broadcast_except(
        &mut self,
        sender: NodeId,
        msg: M,
        except: &[u32],
        conflicts: &mut Vec<u32>,
    ) {
        let me = sender.index();
        debug_assert!(except.windows(2).all(|w| w[0] <= w[1]), "except not sorted");
        self.alloc_lanes();
        self.edit_row(me, |row, lane, _| {
            assert!(
                row.base.is_none(),
                "merge_broadcast_except over an existing broadcast base"
            );
            row.ensure_dense(lane);
            let bs = msg.bit_size();
            let mut k = 0usize;
            let mut inherited = 0usize;
            for (r, cell) in lane.iter_mut().enumerate() {
                let mut is_knocked = false;
                while k < except.len() && except[k] as usize == r {
                    is_knocked = true;
                    k += 1;
                }
                match cell {
                    Cell::Msg(_) => {
                        if !is_knocked {
                            conflicts.push(r as u32);
                        }
                    }
                    Cell::Knocked => {}
                    Cell::Inherit => {
                        if is_knocked {
                            *cell = Cell::Knocked;
                        } else if r != me {
                            inherited += 1;
                        }
                    }
                }
            }
            row.count += inherited;
            row.bits += inherited * bs;
            row.max_bits = row.max_bits.max(bs);
            row.base = Some(msg);
        });
    }

    /// The row's shared broadcast base, if any — present even when
    /// receivers have been knocked out or overridden (unlike
    /// [`RoundMailbox::broadcast_of`], which only reports *pure*
    /// broadcasts).
    pub fn broadcast_base(&self, sender: NodeId) -> Option<&M> {
        self.rows[sender.index()].base.as_ref()
    }

    /// Removes the single `(sender, receiver)` message, if any — used by
    /// the delivery stage to knock one recipient out of a broadcast
    /// without cloning the message `n` times. O(1) after the row's
    /// one-off lane stamp; never clones a message.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn knock_out(&mut self, sender: NodeId, receiver: NodeId) {
        let me = sender.index();
        let r = receiver.index();
        if self.is_silent_row(me) {
            return; // silent row: nothing to knock out
        }
        self.alloc_lanes();
        self.edit_row(me, |row, lane, _| {
            row.ensure_dense(lane);
            let (counted, bits) = row.contribution(lane, me, r);
            let removed_bits = row.effective(lane, r).map(Message::bit_size);
            lane[r] = Cell::Knocked;
            if counted {
                row.count -= 1;
                row.bits -= bits;
            }
            if removed_bits == Some(row.max_bits) {
                // The removed message may have held the row maximum.
                row.max_dirty = true;
            }
        });
    }

    /// Whether row `me` carries nothing at all (not even a self-copy).
    fn is_silent_row(&self, me: usize) -> bool {
        let row = &self.rows[me];
        row.count == 0 && row.effective(self.lane(me), me).is_none()
    }

    /// Adds a single point-to-point message, merging with whatever
    /// `sender` already has in this mailbox (the delivery stage uses this
    /// to assemble a round's arrivals one message at a time). An existing
    /// message for the same `(sender, receiver)` pair is replaced; other
    /// receivers of a broadcast keep the shared copy — the broadcast is
    /// *not* expanded into per-recipient clones, so this is O(1) per
    /// insert after the row's one-off lane stamp.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn insert(&mut self, sender: NodeId, receiver: NodeId, m: M) {
        let me = sender.index();
        let r = receiver.index();
        self.alloc_lanes();
        self.edit_row(me, |row, lane, _| {
            row.ensure_dense(lane);
            let (counted, old_bits) = row.contribution(lane, me, r);
            let bs = m.bit_size();
            lane[r] = Cell::Msg(m);
            if counted {
                row.bits -= old_bits;
                row.count -= 1;
                if old_bits >= bs && old_bits == row.max_bits {
                    row.max_dirty = true;
                }
            }
            row.count += 1;
            row.bits += bs;
            row.max_bits = row.max_bits.max(bs);
        });
    }

    /// Inserts `m` at `(sender, receiver)` only if no message occupies
    /// that pair, returning `None` on success and handing `m` back when
    /// the link is busy. This is the flight queue's drain primitive: one
    /// row walk decides *and* installs, with none of the generic
    /// replacement bookkeeping of [`RoundMailbox::insert`].
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn insert_if_vacant(&mut self, sender: NodeId, receiver: NodeId, m: M) -> Option<M> {
        let mut m = Some(m);
        let inserted =
            self.insert_if_vacant_with(sender, receiver, || m.take().expect("built once"));
        debug_assert_eq!(inserted, m.is_none());
        m
    }

    /// Like [`RoundMailbox::insert_if_vacant`], but builds the message
    /// with `make` only when the pair is actually vacant — the grouped
    /// flight queue's drain primitive, which shares one message across a
    /// whole receiver list and clones it per *delivered* receiver only.
    /// Returns whether the message was installed.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn insert_if_vacant_with(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        make: impl FnOnce() -> M,
    ) -> bool {
        let me = sender.index();
        let r = receiver.index();
        let n = self.n;
        if !self.rows[me].dense && self.rows[me].base.is_some() {
            return false; // pure broadcast: every pair is occupied
        }
        self.alloc_lanes();
        let row = &mut self.rows[me];
        let lane = &mut self.lanes[me * n..(me + 1) * n];
        row.ensure_dense(lane);
        match &lane[r] {
            Cell::Msg(_) => return false,
            Cell::Inherit if row.base.is_some() => return false,
            Cell::Inherit | Cell::Knocked => {}
        }
        // Vacant: an explicit message always counts (even a self-copy).
        let m = make();
        let bs = m.bit_size();
        lane[r] = Cell::Msg(m);
        row.count += 1;
        row.bits += bs;
        row.max_bits = row.max_bits.max(bs);
        let row_max = row.max_bits;
        self.count += 1;
        self.bits += bs;
        if !self.max_dirty {
            self.max_cache = self.max_cache.max(row_max);
        }
        true
    }

    /// Removes and returns `sender`'s *pure* broadcast message (no
    /// knock-outs, no overrides), leaving the row silent. The delivery
    /// stage uses this to move the base into the arrivals mailbox
    /// without cloning. Returns `None` for any other row shape.
    pub fn take_broadcast(&mut self, sender: NodeId) -> Option<M> {
        let me = sender.index();
        if self.rows[me].dense || self.rows[me].base.is_none() {
            return None;
        }
        let mut taken = None;
        self.edit_row(me, |row, lane, _| {
            taken = row.base.take();
            row.clear(lane);
        });
        taken
    }

    /// The per-receiver deviations of `sender`'s row from its broadcast
    /// base, in receiver order: `(receiver, None)` for a receiver knocked
    /// out of the base, `(receiver, Some(m))` for a receiver overridden
    /// with a specific message. Yields nothing for silent and pure-
    /// broadcast rows.
    ///
    /// Together with [`RoundMailbox::broadcast_base`] this is the
    /// mailbox's *recording view*: `(base, deviations)` reproduces
    /// [`RoundMailbox::resolve`] for every receiver without expanding a
    /// broadcast into clones — which is what keeps the `aba-check` trace
    /// recorder allocation-light.
    pub fn deviations(&self, sender: NodeId) -> impl Iterator<Item = (NodeId, Option<&M>)> {
        let me = sender.index();
        let row = &self.rows[me];
        let lane = self.lane(me);
        row.dense
            .then(|| {
                lane.iter().enumerate().filter_map(|(r, c)| match c {
                    Cell::Inherit => None,
                    Cell::Knocked => Some((NodeId::new(r as u32), None)),
                    Cell::Msg(m) => Some((NodeId::new(r as u32), Some(m))),
                })
            })
            .into_iter()
            .flatten()
    }

    /// The message `receiver` gets from `sender` this round, if any.
    pub fn resolve(&self, sender: NodeId, receiver: NodeId) -> Option<&M> {
        let me = sender.index();
        self.rows[me].effective(self.lane(me), receiver.index())
    }

    /// Whether `sender` broadcast (sent one identical message to
    /// everyone, with no knock-outs or overrides).
    pub fn is_broadcast(&self, sender: NodeId) -> bool {
        let row = &self.rows[sender.index()];
        row.base.is_some() && !row.dense
    }

    /// Whether `sender` sent nothing at all (to anyone, itself included).
    pub fn is_silent(&self, sender: NodeId) -> bool {
        self.is_silent_row(sender.index())
    }

    /// The broadcast message of `sender`, if it (purely) broadcast.
    pub fn broadcast_of(&self, sender: NodeId) -> Option<&M> {
        let row = &self.rows[sender.index()];
        if row.dense {
            None
        } else {
            row.base.as_ref()
        }
    }

    /// Zero-allocation view of all messages addressed to `receiver`.
    pub fn inbox(&self, receiver: NodeId) -> Inbox<'_, M> {
        Inbox::dense(self, receiver)
    }

    /// Total point-to-point messages generated this round. O(1): the
    /// counter is maintained incrementally.
    pub fn message_count(&self) -> usize {
        self.count
    }

    /// Total bits on the wire this round. O(1).
    pub fn total_bits(&self) -> usize {
        self.bits
    }

    /// The largest message crossing any single edge this round, in bits.
    ///
    /// Because each ordered pair of nodes exchanges at most one message
    /// per round in this engine, this *is* the per-edge-per-round bit
    /// maximum that the CONGEST model bounds. O(1) unless a mutation
    /// lowered a row maximum since the last full write, in which case
    /// the affected rows are rescanned.
    pub fn max_edge_bits(&self) -> usize {
        if !self.max_dirty {
            return self.max_cache;
        }
        (0..self.rows.len())
            .map(|s| self.rows[s].current_max(self.lane(s)))
            .max()
            .unwrap_or(0)
    }

    /// Adds each sender's offered traffic (this plane as the *wire*
    /// mailbox, pre-delivery) to `scan`'s per-sender counters. The
    /// per-row counters are maintained incrementally, so this is O(n)
    /// and sums exactly to [`RoundMailbox::message_count`] /
    /// [`RoundMailbox::total_bits`].
    pub(crate) fn tally_offered_into(&self, scan: &mut crate::arrivals::ArrivalScan) {
        for (s, row) in self.rows.iter().enumerate() {
            if row.count != 0 {
                scan.add_sent(s, row.count as u32, row.bits as u64);
            }
        }
    }

    /// Fills `scan`'s arrival bitsets and per-receiver delivered
    /// counters from this plane as the *arrivals* mailbox
    /// (post-delivery). O(n) over rows plus one lane walk per dense
    /// row, mirroring [`RoundMailbox::deviations`]. Self-copies land in
    /// the arrival bitsets (they are real inbox entries) but not in the
    /// delivered counters — they never touch the network, matching
    /// [`RoundMailbox::message_count`] and the delivery stats.
    pub(crate) fn scan_arrivals_into(&self, scan: &mut crate::arrivals::ArrivalScan) {
        for (s, row) in self.rows.iter().enumerate() {
            let has_base = if let Some(base) = &row.base {
                scan.mark_base(s, base.bit_size() as u32);
                true
            } else {
                false
            };
            if row.dense {
                for (r, c) in self.lane(s).iter().enumerate() {
                    match c {
                        Cell::Inherit => {}
                        Cell::Knocked => {
                            if has_base {
                                scan.mark_knocked(r, s);
                            }
                        }
                        Cell::Msg(m) => {
                            if has_base {
                                scan.mark_knocked(r, s);
                            }
                            scan.mark_extra(r, s);
                            if r != s {
                                scan.add_recv(r, 1, m.bit_size() as u64);
                            }
                        }
                    }
                }
            }
        }
        scan.finish_base_recv();
    }
}

/// Lazily-resolved view of one receiver's incoming messages.
///
/// Iteration yields `(sender, &message)` in sender-ID order, one entry per
/// sender that addressed this receiver. The receiver's own broadcast is
/// included (the paper's tallies count the node's own value).
///
/// The view is backend-polymorphic: the engine hands protocols the same
/// `Inbox` type whether the round's messages live in the dense
/// [`RoundMailbox`] or the bit-packed
/// [`PackedMailbox`](crate::packed::PackedMailbox). The packed backend
/// additionally answers word-parallel threshold queries through
/// [`Inbox::packed_match_count`].
#[derive(Debug, Clone)]
pub struct Inbox<'a, M> {
    backend: InboxBackend<'a, M>,
    receiver: NodeId,
}

#[derive(Debug, Clone)]
enum InboxBackend<'a, M> {
    Dense(&'a RoundMailbox<M>),
    Packed {
        plane: &'a crate::packed::PackedMailbox<M>,
        decode: fn(u32) -> M,
        /// Decoded `(sender, message)` pairs, materialized on first
        /// by-reference access (iteration / `from`); the fast paths
        /// (`len`, `packed_match_count`) never touch it.
        scratch: std::cell::OnceCell<Vec<(NodeId, M)>>,
    },
    Sparse(&'a crate::sparse::SparseMailbox<M>),
}

/// Iterator over any backend's inbox entries.
enum EitherIter<A, B, C> {
    Dense(A),
    Packed(B),
    Sparse(C),
}

impl<A: Iterator<Item = T>, B: Iterator<Item = T>, C: Iterator<Item = T>, T> Iterator
    for EitherIter<A, B, C>
{
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::Dense(it) => it.next(),
            EitherIter::Packed(it) => it.next(),
            EitherIter::Sparse(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            EitherIter::Dense(it) => it.size_hint(),
            EitherIter::Packed(it) => it.size_hint(),
            EitherIter::Sparse(it) => it.size_hint(),
        }
    }

    // Internal iteration must reach the wrapped adapter: `count`,
    // `for_each`, and the `filter(..).count()` tallies the protocols
    // run per round all lower to `fold`, and the dense backend's
    // `filter_map` only vectorizes through its own `fold` — the default
    // `next()` loop over the enum costs ~4x on the hot path.
    fn fold<Acc, F>(self, init: Acc, f: F) -> Acc
    where
        F: FnMut(Acc, T) -> Acc,
    {
        match self {
            EitherIter::Dense(it) => it.fold(init, f),
            EitherIter::Packed(it) => it.fold(init, f),
            EitherIter::Sparse(it) => it.fold(init, f),
        }
    }
}

impl<'a, M: Message> Inbox<'a, M> {
    /// A dense-backed inbox (constructed by [`RoundMailbox::inbox`]).
    pub(crate) fn dense(mailbox: &'a RoundMailbox<M>, receiver: NodeId) -> Self {
        Inbox {
            backend: InboxBackend::Dense(mailbox),
            receiver,
        }
    }

    /// A packed-backed inbox (constructed by the packed plane's
    /// `MessagePlane::inbox`).
    pub(crate) fn packed(
        plane: &'a crate::packed::PackedMailbox<M>,
        decode: fn(u32) -> M,
        receiver: NodeId,
    ) -> Self {
        Inbox {
            backend: InboxBackend::Packed {
                plane,
                decode,
                scratch: std::cell::OnceCell::new(),
            },
            receiver,
        }
    }

    /// A sparse-backed inbox (constructed by the sparse plane's
    /// `MessagePlane::inbox`).
    pub(crate) fn sparse(plane: &'a crate::sparse::SparseMailbox<M>, receiver: NodeId) -> Self {
        Inbox {
            backend: InboxBackend::Sparse(plane),
            receiver,
        }
    }

    /// The receiving node.
    pub fn receiver(&self) -> NodeId {
        self.receiver
    }

    /// Network size.
    pub fn n(&self) -> usize {
        match &self.backend {
            InboxBackend::Dense(mb) => mb.n,
            InboxBackend::Packed { plane, .. } => plane.n(),
            InboxBackend::Sparse(plane) => plane.n(),
        }
    }

    /// The packed backend's decoded entries, filled on first use.
    fn packed_entries(&self) -> Option<&Vec<(NodeId, M)>> {
        match &self.backend {
            InboxBackend::Dense(_) | InboxBackend::Sparse(_) => None,
            InboxBackend::Packed {
                plane,
                decode,
                scratch,
            } => Some(scratch.get_or_init(|| {
                let mut out = Vec::new();
                plane.fill_inbox(self.receiver, *decode, &mut out);
                out
            })),
        }
    }

    /// Iterates over `(sender, message)` pairs addressed to this receiver.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &M)> + '_ {
        match &self.backend {
            InboxBackend::Dense(mb) => {
                let r = self.receiver.index();
                let n = mb.n;
                let lanes = &mb.lanes;
                EitherIter::Dense(mb.rows.iter().enumerate().filter_map(move |(s, row)| {
                    let lane = if lanes.is_empty() {
                        &[][..]
                    } else {
                        &lanes[s * n..(s + 1) * n]
                    };
                    row.effective(lane, r).map(|m| (NodeId::new(s as u32), m))
                }))
            }
            InboxBackend::Packed { .. } => EitherIter::Packed(
                self.packed_entries()
                    .expect("packed backend")
                    .iter()
                    .map(|(s, m)| (*s, m)),
            ),
            InboxBackend::Sparse(plane) => EitherIter::Sparse(plane.inbox_iter(self.receiver)),
        }
    }

    /// The message from a specific sender, if any.
    pub fn from(&self, sender: NodeId) -> Option<&M> {
        match &self.backend {
            InboxBackend::Dense(mb) => mb.resolve(sender, self.receiver),
            InboxBackend::Packed { .. } => {
                let entries = self.packed_entries().expect("packed backend");
                entries
                    .binary_search_by_key(&sender, |(s, _)| *s)
                    .ok()
                    .map(|i| &entries[i].1)
            }
            InboxBackend::Sparse(plane) => plane.resolve(sender, self.receiver),
        }
    }

    /// Number of messages addressed to this receiver. On the packed
    /// backend this is a word-parallel popcount, O(n/64); on the sparse
    /// backend it walks the receiver's adjacency,
    /// O(|bases| + |devs(r)|).
    pub fn len(&self) -> usize {
        match &self.backend {
            InboxBackend::Dense(_) | InboxBackend::Sparse(_) => self.iter().count(),
            InboxBackend::Packed { plane, .. } => plane.inbox_len(self.receiver),
        }
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        match &self.backend {
            InboxBackend::Dense(_) | InboxBackend::Sparse(_) => self.iter().next().is_none(),
            InboxBackend::Packed { .. } => self.len() == 0,
        }
    }

    /// Word-parallel masked count: how many senders delivered this
    /// receiver a message whose packed code satisfies
    /// `code & mask == bits`, optionally restricted to a sender-ID
    /// range. Returns `None` on the dense and sparse backends —
    /// callers fall back to their by-reference iteration, keeping those
    /// planes' behaviour (and their goldens) untouched.
    pub fn packed_match_count(
        &self,
        mask: u32,
        bits: u32,
        senders: Option<std::ops::Range<u32>>,
    ) -> Option<usize> {
        match &self.backend {
            InboxBackend::Dense(_) | InboxBackend::Sparse(_) => None,
            InboxBackend::Packed { plane, .. } => {
                Some(plane.match_count(self.receiver, mask, bits, senders))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(1), Emission::Broadcast(Tm(9)));
        for r in 0..4 {
            assert_eq!(mb.resolve(id(1), id(r)), Some(&Tm(9)));
        }
        assert!(mb.is_broadcast(id(1)));
        assert_eq!(mb.broadcast_of(id(1)), Some(&Tm(9)));
    }

    #[test]
    fn silence_by_default_and_after_clear() {
        let mut mb = RoundMailbox::new(3);
        assert!(mb.is_silent(id(0)));
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        assert!(!mb.is_silent(id(0)));
        mb.silence(id(0));
        assert!(mb.is_silent(id(0)));
        assert_eq!(mb.resolve(id(0), id(1)), None);
    }

    #[test]
    fn equivocation_delivers_different_messages() {
        let mut mb = RoundMailbox::new(3);
        mb.set(
            id(2),
            Emission::PerRecipient(vec![(id(0), Tm(0)), (id(1), Tm(1))]),
        );
        assert_eq!(mb.resolve(id(2), id(0)), Some(&Tm(0)));
        assert_eq!(mb.resolve(id(2), id(1)), Some(&Tm(1)));
        assert_eq!(mb.resolve(id(2), id(2)), None);
        assert!(!mb.is_broadcast(id(2)));
    }

    #[test]
    fn later_per_recipient_entries_override() {
        let mut mb = RoundMailbox::new(2);
        mb.set(
            id(0),
            Emission::PerRecipient(vec![(id(1), Tm(1)), (id(1), Tm(2))]),
        );
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(2)));
        assert_eq!(mb.message_count(), 1);
        assert_eq!(mb.total_bits(), 8);
    }

    #[test]
    fn inbox_iterates_in_sender_order() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(3), Emission::Broadcast(Tm(3)));
        mb.set(id(1), Emission::Broadcast(Tm(1)));
        mb.set(id(2), Emission::PerRecipient(vec![(id(0), Tm(2))]));
        let inbox = mb.inbox(id(0));
        let got: Vec<_> = inbox.iter().map(|(s, m)| (s.index(), m.0)).collect();
        assert_eq!(got, vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.from(id(3)), Some(&Tm(3)));
        assert_eq!(inbox.from(id(0)), None);
    }

    #[test]
    fn counting_messages_and_bits() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(0))); // 3 msgs, 24 bits
        mb.set(
            id(1),
            Emission::PerRecipient(vec![(id(2), Tm(1)), (id(3), Tm(2))]),
        ); // 2 msgs, 16 bits
        assert_eq!(mb.message_count(), 5);
        assert_eq!(mb.total_bits(), 40);
        assert_eq!(mb.max_edge_bits(), 8);
    }

    #[test]
    fn empty_mailbox_counts_zero() {
        let mb: RoundMailbox<Tm> = RoundMailbox::new(8);
        assert_eq!(mb.message_count(), 0);
        assert_eq!(mb.total_bits(), 0);
        assert_eq!(mb.max_edge_bits(), 0);
        assert!(mb.inbox(id(5)).is_empty());
    }

    #[test]
    fn insert_merges_into_every_slot_kind() {
        let mut mb = RoundMailbox::new(3);
        // Into a silent slot.
        mb.insert(id(0), id(1), Tm(5));
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(5)));
        assert_eq!(mb.resolve(id(0), id(2)), None);
        // Into a per-recipient slot: same pair replaces, new pair adds.
        mb.insert(id(0), id(1), Tm(6));
        mb.insert(id(0), id(2), Tm(7));
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(6)));
        assert_eq!(mb.resolve(id(0), id(2)), Some(&Tm(7)));
        // Into a broadcast slot: other recipients keep the broadcast copy.
        mb.set(id(1), Emission::Broadcast(Tm(1)));
        mb.insert(id(1), id(0), Tm(9));
        assert_eq!(mb.resolve(id(1), id(0)), Some(&Tm(9)));
        assert_eq!(mb.resolve(id(1), id(1)), Some(&Tm(1)));
        assert_eq!(mb.resolve(id(1), id(2)), Some(&Tm(1)));
    }

    #[test]
    fn overriding_a_slot_replaces_it() {
        let mut mb = RoundMailbox::new(2);
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        mb.set(id(0), Emission::PerRecipient(vec![(id(1), Tm(7))]));
        assert_eq!(mb.resolve(id(0), id(0)), None);
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(7)));
    }

    // --- dense-representation specifics -------------------------------

    /// A message whose clones are counted, to pin the zero-clone claims.
    #[derive(Debug)]
    struct Counted(u8);
    static CLONES: AtomicUsize = AtomicUsize::new(0);
    impl Clone for Counted {
        fn clone(&self) -> Self {
            CLONES.fetch_add(1, Ordering::Relaxed);
            Counted(self.0)
        }
    }
    impl Message for Counted {
        fn bit_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn insert_into_broadcast_never_clones_the_base() {
        let mut mb: RoundMailbox<Counted> = RoundMailbox::new(64);
        mb.set(id(0), Emission::Broadcast(Counted(1)));
        let before = CLONES.load(Ordering::Relaxed);
        mb.insert(id(0), id(7), Counted(2));
        mb.insert(id(0), id(9), Counted(3));
        mb.knock_out(id(0), id(11));
        assert_eq!(
            CLONES.load(Ordering::Relaxed),
            before,
            "broadcast expansion must not clone the base message"
        );
        assert_eq!(mb.resolve(id(0), id(7)).map(|m| m.0), Some(2));
        assert_eq!(mb.resolve(id(0), id(11)).map(|m| m.0), None);
        assert_eq!(mb.resolve(id(0), id(12)).map(|m| m.0), Some(1));
    }

    #[test]
    fn knock_out_removes_single_broadcast_recipient() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(1), Emission::Broadcast(Tm(9)));
        assert_eq!(mb.message_count(), 3);
        mb.knock_out(id(1), id(3));
        assert_eq!(mb.resolve(id(1), id(3)), None);
        assert_eq!(mb.resolve(id(1), id(0)), Some(&Tm(9)));
        assert_eq!(mb.resolve(id(1), id(1)), Some(&Tm(9)), "self-copy kept");
        assert!(!mb.is_broadcast(id(1)), "no longer a pure broadcast");
        assert_eq!(mb.message_count(), 2);
        assert_eq!(mb.total_bits(), 16);
        assert_eq!(mb.max_edge_bits(), 8, "base still crosses other edges");
    }

    #[test]
    fn knock_out_self_copy_is_free_but_effective() {
        let mut mb = RoundMailbox::new(3);
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        assert_eq!(mb.message_count(), 2);
        mb.knock_out(id(0), id(0));
        assert_eq!(mb.resolve(id(0), id(0)), None);
        assert_eq!(mb.message_count(), 2, "self-copy was never counted");
        assert_eq!(mb.total_bits(), 16);
    }

    #[test]
    fn knock_out_on_silent_and_per_recipient_rows() {
        let mut mb = RoundMailbox::new(3);
        mb.knock_out(id(0), id(1)); // silent row: no-op
        assert!(mb.is_silent(id(0)));
        assert_eq!(mb.message_count(), 0);
        mb.set(
            id(1),
            Emission::PerRecipient(vec![(id(0), Tm(4)), (id(2), Tm(5))]),
        );
        mb.knock_out(id(1), id(2));
        assert_eq!(mb.resolve(id(1), id(2)), None);
        assert_eq!(mb.resolve(id(1), id(0)), Some(&Tm(4)));
        assert_eq!(mb.message_count(), 1);
        assert_eq!(mb.total_bits(), 8);
        // Knocking the same pair twice is a no-op.
        mb.knock_out(id(1), id(2));
        assert_eq!(mb.message_count(), 1);
    }

    #[test]
    fn knock_out_then_override_counts_once() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        mb.knock_out(id(0), id(2));
        assert_eq!(mb.message_count(), 2);
        // Overriding a knocked-out cell re-adds exactly one message.
        mb.insert(id(0), id(2), Tm(7));
        assert_eq!(mb.resolve(id(0), id(2)), Some(&Tm(7)));
        assert_eq!(mb.message_count(), 3);
        assert_eq!(mb.total_bits(), 24);
    }

    #[test]
    fn set_broadcast_except_matches_knock_outs() {
        let mut a = RoundMailbox::new(5);
        a.set(id(2), Emission::Broadcast(Tm(6)));
        a.knock_out(id(2), id(0));
        a.knock_out(id(2), id(4));
        let mut b = RoundMailbox::new(5);
        b.set_broadcast_except(id(2), Tm(6), &[0, 4]);
        for r in 0..5 {
            assert_eq!(a.resolve(id(2), id(r)), b.resolve(id(2), id(r)), "r={r}");
        }
        assert_eq!(a.message_count(), b.message_count());
        assert_eq!(a.total_bits(), b.total_bits());
        // Duplicates in `except` are tolerated.
        let mut c = RoundMailbox::new(5);
        c.set_broadcast_except(id(2), Tm(6), &[0, 0, 4, 4]);
        assert_eq!(c.message_count(), b.message_count());
    }

    #[test]
    fn set_broadcast_except_empty_is_pure_broadcast() {
        let mut mb = RoundMailbox::new(4);
        mb.set_broadcast_except(id(1), Tm(3), &[]);
        assert!(mb.is_broadcast(id(1)));
        assert_eq!(mb.message_count(), 3);
        assert_eq!(mb.broadcast_of(id(1)), Some(&Tm(3)));
    }

    #[test]
    fn take_broadcast_moves_the_base_out() {
        let mut mb = RoundMailbox::new(3);
        mb.set(id(0), Emission::Broadcast(Tm(5)));
        assert_eq!(mb.take_broadcast(id(0)), Some(Tm(5)));
        assert!(mb.is_silent(id(0)));
        assert_eq!(mb.message_count(), 0);
        assert_eq!(mb.total_bits(), 0);
        // Non-pure rows refuse.
        mb.set(id(1), Emission::Broadcast(Tm(6)));
        mb.knock_out(id(1), id(2));
        assert_eq!(mb.take_broadcast(id(1)), None);
        assert_eq!(mb.take_broadcast(id(2)), None, "silent row");
    }

    #[test]
    fn reset_reuses_allocations_and_empties() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        mb.insert(id(0), id(2), Tm(9));
        mb.set(id(3), Emission::PerRecipient(vec![(id(1), Tm(2))]));
        mb.reset(4);
        for s in 0..4 {
            assert!(mb.is_silent(id(s)));
            for r in 0..4 {
                assert_eq!(mb.resolve(id(s), id(r)), None);
            }
        }
        assert_eq!(mb.message_count(), 0);
        assert_eq!(mb.total_bits(), 0);
        assert_eq!(mb.max_edge_bits(), 0);
        // And it is fully usable again.
        mb.set(id(2), Emission::Broadcast(Tm(8)));
        assert_eq!(mb.message_count(), 3);
        // Resizing works in both directions.
        mb.reset(2);
        assert_eq!(mb.n(), 2);
        mb.set(id(1), Emission::Broadcast(Tm(1)));
        assert_eq!(mb.message_count(), 1);
        mb.reset(6);
        assert_eq!(mb.n(), 6);
        assert_eq!(mb.message_count(), 0);
    }

    #[test]
    fn max_edge_bits_recovers_after_removals() {
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct Var(usize);
        impl Message for Var {
            fn bit_size(&self) -> usize {
                self.0
            }
        }
        let mut mb = RoundMailbox::new(3);
        mb.set(id(0), Emission::Broadcast(Var(4)));
        mb.set(
            id(1),
            Emission::PerRecipient(vec![(id(0), Var(32)), (id(2), Var(2))]),
        );
        assert_eq!(mb.max_edge_bits(), 32);
        mb.knock_out(id(1), id(0)); // removes the 32-bit maximum
        assert_eq!(mb.max_edge_bits(), 4);
        mb.silence(id(0));
        assert_eq!(mb.max_edge_bits(), 2);
        mb.insert(id(2), id(1), Var(64));
        assert_eq!(mb.max_edge_bits(), 64);
        mb.insert(id(2), id(1), Var(1)); // replacement shrinks the edge
        assert_eq!(mb.max_edge_bits(), 2);
    }
}
