//! The lock-step simulation engine.
//!
//! See the crate docs for the model. The normative round order is:
//!
//! 1. every live honest node emits (drawing randomness now);
//! 2. the adversary acts on the full-information view (seeing step 1's
//!    messages iff rushing), corrupting nodes and dictating corrupted
//!    nodes' emissions — including replacing messages emitted in step 1
//!    by nodes corrupted in this very round;
//! 3. the **delivery stage** ([`Delivery`]) decides what arrives this
//!    round (the default, [`PassThrough`], delivers everything
//!    immediately — the paper's synchronous model), then every live
//!    honest node processes its inbox;
//! 4. metrics and trace are updated.

use crate::adversary::{Adversary, CorruptionLedger, InfoModel, RoundView};
use crate::delivery::{Delivery, PassThrough};
use crate::error::SimError;
use crate::id::{NodeId, Round};
use crate::mailbox::RoundMailbox;
use crate::message::Emission;
use crate::metrics::{RoundMetrics, RunMetrics};
use crate::oracle::{NoOracle, Oracle, RoundCtx};
use crate::plane::MessagePlane;
use crate::probe::{NoProbe, Probe, RoundPhase};
use crate::protocol::Protocol;
use crate::rng::{self, streams};
use crate::trace::{Event, Trace};
use rand::rngs::SmallRng;

/// Configuration of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Network size `n`.
    pub n: usize,
    /// Corruption budget `t` (the adversary may corrupt up to `t` nodes).
    pub t: usize,
    /// Rushing (paper model) or non-rushing (Chor–Coan model) adversary.
    pub info_model: InfoModel,
    /// Hard cap on rounds; hitting it marks the run as non-terminating.
    pub max_rounds: u64,
    /// Master seed; the run is a pure function of `(config, seed)`.
    pub seed: u64,
    /// Record per-round metrics (memory-proportional to rounds).
    pub record_rounds: bool,
    /// Record a structured event trace.
    pub trace: bool,
    /// In-round worker threads for the emit and receive phases
    /// (`0`/`1` = serial). Results are byte-identical at any value:
    /// nodes are sharded into fixed contiguous ID ranges, each node
    /// draws from its own per-node RNG stream, and every reduction
    /// (emission installation, halt bookkeeping, probe hooks) is
    /// replayed on the main thread in ID order.
    pub threads: usize,
}

impl SimConfig {
    /// Reasonable defaults: rushing adversary, 10 000-round cap, seed 0.
    pub fn new(n: usize, t: usize) -> Self {
        SimConfig {
            n,
            t,
            info_model: InfoModel::Rushing,
            max_rounds: 10_000,
            seed: 0,
            record_rounds: false,
            trace: false,
            threads: 1,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the information model.
    #[must_use]
    pub fn with_info_model(mut self, m: InfoModel) -> Self {
        self.info_model = m;
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, r: u64) -> Self {
        self.max_rounds = r;
        self
    }

    /// Enables the event trace.
    #[must_use]
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables per-round metric recording.
    #[must_use]
    pub fn with_round_metrics(mut self, on: bool) -> Self {
        self.record_rounds = on;
        self
    }

    /// Sets the in-round worker-thread count (see [`SimConfig::threads`]).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Rounds executed.
    pub rounds: u64,
    /// True if every honest node halted before the round cap.
    pub all_halted: bool,
    /// Output of each node (`None` for corrupted nodes and non-halted
    /// honest nodes), indexed by ID.
    pub outputs: Vec<Option<bool>>,
    /// `honest[i]` is false iff node `i` was corrupted.
    pub honest: Vec<bool>,
    /// Corruptions actually performed.
    pub corruptions_used: usize,
    /// Round at which each honest node halted (`None` if it never did).
    pub halt_rounds: Vec<Option<u64>>,
    /// Aggregated measurements.
    pub metrics: RunMetrics,
    /// Event log (empty unless tracing was enabled).
    pub trace: Trace,
}

impl RunReport {
    /// Outputs of the honest nodes that decided, in ID order — the values
    /// the agreement/validity conditions quantify over.
    pub fn honest_outputs(&self) -> Vec<bool> {
        self.outputs
            .iter()
            .zip(&self.honest)
            .filter(|(_, h)| **h)
            .filter_map(|(o, _)| *o)
            .collect()
    }

    /// Whether all honest outputs (that exist) are equal.
    pub fn honest_outputs_agree(&self) -> bool {
        self.honest_outputs().windows(2).all(|w| w[0] == w[1])
    }

    /// The round by which every honest node had halted, if all did.
    pub fn completion_round(&self) -> Option<u64> {
        if !self.all_halted {
            return None;
        }
        self.halt_rounds
            .iter()
            .zip(&self.honest)
            .filter(|(_, h)| **h)
            .map(|(r, _)| *r)
            .try_fold(0u64, |acc, r| r.map(|r| acc.max(r)))
    }
}

/// A single simulation run binding a protocol, an adversary, a network
/// delivery stage, an optional online oracle, and a config.
///
/// The third type parameter selects the [`Delivery`] implementation and
/// defaults to [`PassThrough`] (strict lock-step synchrony); richer
/// network conditions plug in via [`Simulation::with_network`] without
/// giving up static dispatch. The fourth selects the online [`Oracle`]
/// and defaults to [`NoOracle`], whose empty inline hooks make the
/// unobserved engine bit-identical in behaviour and cost to the
/// pre-oracle engine; checkers attach via [`Simulation::with_oracle`].
/// The fifth selects the instrumentation [`Probe`] and defaults to
/// [`NoProbe`] under the same zero-cost contract; observers attach via
/// [`Simulation::with_instruments`]. The sixth selects the
/// [`MessagePlane`] the round's messages live in and defaults to the
/// dense [`RoundMailbox`]; binary-BA protocol families opt into the
/// bit-packed [`crate::packed::PackedMailbox`] (see [`PackedSimulation`])
/// for word-parallel tallies at large `n`.
pub struct Simulation<
    P: Protocol,
    A: Adversary<P, L>,
    D: Delivery<P::Msg, L> = PassThrough,
    O: Oracle<P::Msg, L> = NoOracle,
    B: Probe = NoProbe,
    L: MessagePlane<P::Msg> = RoundMailbox<<P as Protocol>::Msg>,
> {
    cfg: SimConfig,
    nodes: Vec<P>,
    adversary: A,
    delivery: D,
    oracle: O,
    probe: B,
    ledger: CorruptionLedger,
    node_rngs: Vec<SmallRng>,
    adv_rng: SmallRng,
    halted: Vec<bool>,
    halt_rounds: Vec<Option<u64>>,
    /// Decided outputs, recorded at halt time (what the oracle seam sees
    /// mid-run; the final report re-reads the nodes).
    outputs: Vec<Option<bool>>,
    metrics: RunMetrics,
    trace: Trace,
    round: Round,
    done: bool,
    /// Pooled round plane: taken at the start of [`Simulation::step`],
    /// cleared and refilled, and restored from the delivery stage's
    /// arrivals — no per-round mailbox allocation after warm-up.
    mailbox_pool: L,
    /// Pooled emission buffer for the sharded emit phase (empty and
    /// untouched while running serially).
    emit_buf: Vec<Option<Emission<P::Msg>>>,
    /// Pooled per-round arrival scan, filled only when the probe opts
    /// in ([`Probe::WANTS_ARRIVALS`]); empty otherwise.
    arrival_scan: crate::arrivals::ArrivalScan,
}

/// A [`Simulation`] on the bit-packed
/// [`PackedMailbox`](crate::packed::PackedMailbox) plane.
pub type PackedSimulation<P, A, D = PassThrough, O = NoOracle, B = NoProbe> =
    Simulation<P, A, D, O, B, crate::packed::PackedMailbox<<P as Protocol>::Msg>>;

/// A [`Simulation`] on the adjacency-list
/// [`SparseMailbox`](crate::sparse::SparseMailbox) plane — no n×n
/// allocation ever, for sampling-based protocol families at very large
/// `n`.
pub type SparseSimulation<P, A, D = PassThrough, O = NoOracle, B = NoProbe> =
    Simulation<P, A, D, O, B, crate::sparse::SparseMailbox<<P as Protocol>::Msg>>;

impl<P: Protocol, A: Adversary<P>> Simulation<P, A, PassThrough> {
    /// Creates a simulation on the synchronous network (every message
    /// delivered in its emission round).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != cfg.n` or `cfg.n == 0` — these are
    /// programming errors, not runtime conditions. Use
    /// [`Simulation::try_new`] for fallible construction.
    pub fn new(cfg: SimConfig, nodes: Vec<P>, adversary: A) -> Self {
        Self::try_new(cfg, nodes, adversary).expect("invalid simulation setup")
    }

    /// Fallible constructor on the synchronous network.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadNetworkSize`] if `n == 0` and
    /// [`SimError::NodeCountMismatch`] if the node vector has the wrong
    /// length.
    pub fn try_new(cfg: SimConfig, nodes: Vec<P>, adversary: A) -> Result<Self, SimError> {
        Self::try_with_network(cfg, nodes, adversary, PassThrough)
    }
}

impl<P: Protocol, A: Adversary<P>, D: Delivery<P::Msg>> Simulation<P, A, D> {
    /// Creates a simulation with an explicit network delivery stage.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn with_network(cfg: SimConfig, nodes: Vec<P>, adversary: A, delivery: D) -> Self {
        Self::try_with_network(cfg, nodes, adversary, delivery).expect("invalid simulation setup")
    }

    /// Fallible constructor with an explicit network delivery stage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::try_new`].
    pub fn try_with_network(
        cfg: SimConfig,
        nodes: Vec<P>,
        adversary: A,
        delivery: D,
    ) -> Result<Self, SimError> {
        Simulation::try_with_oracle(cfg, nodes, adversary, delivery, NoOracle)
    }
}

impl<P: Protocol, A: Adversary<P>, D: Delivery<P::Msg>, O: Oracle<P::Msg>> Simulation<P, A, D, O> {
    /// Creates a simulation with an explicit delivery stage and an online
    /// oracle observing every round (see [`Oracle`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn with_oracle(
        cfg: SimConfig,
        nodes: Vec<P>,
        adversary: A,
        delivery: D,
        oracle: O,
    ) -> Self {
        Self::try_with_oracle(cfg, nodes, adversary, delivery, oracle)
            .expect("invalid simulation setup")
    }

    /// Fallible constructor with an explicit delivery stage and oracle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::try_new`].
    pub fn try_with_oracle(
        cfg: SimConfig,
        nodes: Vec<P>,
        adversary: A,
        delivery: D,
        oracle: O,
    ) -> Result<Self, SimError> {
        Simulation::try_with_instruments(cfg, nodes, adversary, delivery, oracle, NoProbe)
    }
}

impl<
        P: Protocol,
        A: Adversary<P, L>,
        D: Delivery<P::Msg, L>,
        O: Oracle<P::Msg, L>,
        B: Probe,
        L: MessagePlane<P::Msg>,
    > Simulation<P, A, D, O, B, L>
{
    /// Creates a fully-instrumented simulation: explicit delivery stage,
    /// online oracle, and engine probe (see [`Probe`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn with_instruments(
        cfg: SimConfig,
        nodes: Vec<P>,
        adversary: A,
        delivery: D,
        oracle: O,
        probe: B,
    ) -> Self {
        Self::try_with_instruments(cfg, nodes, adversary, delivery, oracle, probe)
            .expect("invalid simulation setup")
    }

    /// Fallible fully-instrumented constructor. The probe's
    /// [`Probe::run_start`] hook fires here, on the validated config.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::try_new`].
    pub fn try_with_instruments(
        cfg: SimConfig,
        nodes: Vec<P>,
        adversary: A,
        delivery: D,
        oracle: O,
        mut probe: B,
    ) -> Result<Self, SimError> {
        if cfg.n == 0 {
            return Err(SimError::BadNetworkSize { n: 0 });
        }
        if nodes.len() != cfg.n {
            return Err(SimError::NodeCountMismatch {
                expected: cfg.n,
                got: nodes.len(),
            });
        }
        let node_rngs = (0..cfg.n).map(|i| rng::node_rng(cfg.seed, i)).collect();
        let adv_rng = rng::rng_for(cfg.seed, streams::ADVERSARY);
        let ledger = CorruptionLedger::new(cfg.n, cfg.t);
        let trace = if cfg.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        probe.run_start(&cfg);
        let mut mailbox_pool = L::default();
        mailbox_pool.reset(cfg.n);
        Ok(Simulation {
            halted: vec![false; cfg.n],
            halt_rounds: vec![None; cfg.n],
            outputs: vec![None; cfg.n],
            metrics: RunMetrics::new(cfg.record_rounds),
            mailbox_pool,
            emit_buf: Vec::new(),
            arrival_scan: crate::arrivals::ArrivalScan::new(),
            nodes,
            adversary,
            delivery,
            oracle,
            probe,
            ledger,
            node_rngs,
            adv_rng,
            trace,
            round: Round::ZERO,
            done: false,
            cfg,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current round (the next one to execute).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Immutable access to the nodes (for tests and inspection).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The corruption ledger.
    pub fn ledger(&self) -> &CorruptionLedger {
        &self.ledger
    }

    /// Whether the run has finished (all honest halted or cap reached).
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn all_honest_halted(&self) -> bool {
        self.halted
            .iter()
            .enumerate()
            .all(|(i, h)| *h || self.ledger.is_corrupted(NodeId::new(i as u32)))
    }

    /// Records node `i`'s halt (it may halt inside `emit` — "broadcast
    /// once more and terminate" — or inside `receive`).
    fn record_halt(&mut self, round: Round, i: usize) {
        let id = NodeId::new(i as u32);
        self.halted[i] = true;
        self.halt_rounds[i] = Some(round.index());
        self.outputs[i] = self.nodes[i].output();
        self.trace.push(Event::Halt {
            round,
            node: id,
            output: self.outputs[i],
        });
        self.probe.halt(round, id, self.outputs[i]);
    }

    /// Executes one round. Returns `true` if the run is still going.
    ///
    /// The `Send`/`Sync` bounds exist for the in-round worker pool
    /// ([`SimConfig::threads`]); every protocol/message in this
    /// workspace is plain data, so they are satisfied automatically.
    pub fn step(&mut self) -> bool
    where
        P: Send,
        P::Msg: Send + Sync,
        L: Sync,
    {
        if self.done {
            return false;
        }
        let n = self.cfg.n;
        let round = self.round;
        let threads = self.cfg.threads.clamp(1, n);
        self.trace.push(Event::RoundStart { round });
        self.probe.round_start(round);

        // Phase 1: live honest nodes emit. The round mailbox is pooled:
        // taken from the previous round's arrivals, cleared in place.
        //
        // With in-round workers, nodes are sharded into fixed contiguous
        // ID ranges; each worker writes emissions into its slice of the
        // pooled buffer, and the main thread then installs them — and
        // replays the halt bookkeeping — strictly in ID order, so the
        // mailbox, trace, and probe streams are byte-identical to the
        // serial schedule at any thread count.
        let mut mailbox = std::mem::take(&mut self.mailbox_pool);
        mailbox.reset(n);
        if threads > 1 {
            if self.emit_buf.len() != n {
                self.emit_buf.clear();
                self.emit_buf.resize_with(n, || None);
            }
            let chunk = n.div_ceil(threads);
            {
                let halted = &self.halted;
                let ledger = &self.ledger;
                let mut nodes_rest: &mut [P] = &mut self.nodes;
                let mut rngs_rest: &mut [SmallRng] = &mut self.node_rngs;
                let mut buf_rest: &mut [Option<Emission<P::Msg>>] = &mut self.emit_buf;
                std::thread::scope(|s| {
                    let mut start = 0;
                    while start < n {
                        let len = chunk.min(n - start);
                        let (nc, nr) = nodes_rest.split_at_mut(len);
                        let (rc, rr) = rngs_rest.split_at_mut(len);
                        let (bc, br) = buf_rest.split_at_mut(len);
                        nodes_rest = nr;
                        rngs_rest = rr;
                        buf_rest = br;
                        let base = start;
                        s.spawn(move || {
                            for (off, ((node, rng), slot)) in nc
                                .iter_mut()
                                .zip(rc.iter_mut())
                                .zip(bc.iter_mut())
                                .enumerate()
                            {
                                let i = base + off;
                                if halted[i] || ledger.is_corrupted(NodeId::new(i as u32)) {
                                    continue;
                                }
                                *slot = Some(node.emit(round, rng));
                            }
                        });
                        start += len;
                    }
                });
            }
            for i in 0..n {
                if let Some(emission) = self.emit_buf[i].take() {
                    mailbox.set(NodeId::new(i as u32), emission);
                    if self.nodes[i].halted() {
                        self.record_halt(round, i);
                    }
                }
            }
        } else {
            for i in 0..n {
                let id = NodeId::new(i as u32);
                if self.halted[i] || self.ledger.is_corrupted(id) {
                    continue;
                }
                let emission = self.nodes[i].emit(round, &mut self.node_rngs[i]);
                mailbox.set(id, emission);
                if self.nodes[i].halted() {
                    self.record_halt(round, i);
                }
            }
        }
        self.probe.phase_end(round, RoundPhase::Emit);

        // Phase 2: the adversary acts.
        let corruptions_before = self.ledger.used();
        let action = {
            let view = RoundView {
                round,
                nodes: &self.nodes,
                outgoing: self.cfg.info_model.is_rushing().then_some(&mailbox),
                ledger: &self.ledger,
                halted: &self.halted,
            };
            self.adversary.act(&view, &mut self.adv_rng)
        };
        self.oracle.observe_action(round, &action);

        // Apply corruptions; budget violations are programming errors in
        // the strategy and surface as panics with context.
        for id in &action.corruptions {
            self.ledger
                .corrupt(*id, round)
                .unwrap_or_else(|e| panic!("adversary violated corruption rules: {e}"));
            self.trace.push(Event::Corruption {
                round,
                node: *id,
                total: self.ledger.used(),
            });
            self.probe.corruption(round, *id, self.ledger.used());
        }
        // Every corrupted node's slot is reset: silent unless the action
        // provides an emission. This also erases the honest emission of a
        // node corrupted this round (rushing corruption).
        for id in self.ledger.corrupted_nodes() {
            mailbox.silence(id);
        }
        for (id, send) in action.sends {
            if !self.ledger.is_corrupted(id) {
                panic!(
                    "adversary violated send rules: {}",
                    SimError::SendFromHonest { node: id, round }
                );
            }
            mailbox.set(id, send);
        }
        self.probe.phase_end(round, RoundPhase::Adversary);

        // Phase 3: the delivery stage decides what arrives this round
        // (emission metrics are taken from the wire mailbox first, so
        // message/bit accounting measures offered load regardless of the
        // network model), then every live honest node processes its inbox.
        let round_messages = mailbox.message_count();
        let round_bits = mailbox.total_bits();
        let round_max_edge = mailbox.max_edge_bits();
        if B::WANTS_ARRIVALS {
            // Offered traffic is read off the wire mailbox here, at the
            // same point the round's message/bit metrics are taken.
            self.arrival_scan.reset(n);
            mailbox.tally_offered(&mut self.arrival_scan);
        }
        let (arrivals, delivery_stats) = self.delivery.deliver(round, mailbox, &self.ledger);
        self.probe.phase_end(round, RoundPhase::Deliver);
        if B::WANTS_ARRIVALS {
            arrivals.scan_arrivals(&mut self.arrival_scan);
            self.arrival_scan.set_corrupted(self.ledger.flags());
            self.probe.arrivals(round, &self.arrival_scan);
        }
        // With in-round workers, receivers share the arrivals plane
        // immutably over the same fixed ID shards; the halted flags are
        // only read during the phase (a node's halt can't change another
        // node's skip decision within a phase), so the per-node work is
        // schedule-independent. Halt bookkeeping is again replayed on
        // the main thread in ID order.
        if threads > 1 {
            let halted = &self.halted;
            let ledger = &self.ledger;
            let arrivals_ref = &arrivals;
            let chunk = n.div_ceil(threads);
            let mut nodes_rest: &mut [P] = &mut self.nodes;
            let mut rngs_rest: &mut [SmallRng] = &mut self.node_rngs;
            std::thread::scope(|s| {
                let mut start = 0;
                while start < n {
                    let len = chunk.min(n - start);
                    let (nc, nr) = nodes_rest.split_at_mut(len);
                    let (rc, rr) = rngs_rest.split_at_mut(len);
                    nodes_rest = nr;
                    rngs_rest = rr;
                    let base = start;
                    s.spawn(move || {
                        for (off, (node, rng)) in nc.iter_mut().zip(rc.iter_mut()).enumerate() {
                            let i = base + off;
                            let id = NodeId::new(i as u32);
                            if halted[i] || ledger.is_corrupted(id) {
                                continue;
                            }
                            node.receive(round, arrivals_ref.inbox(id), rng);
                        }
                    });
                    start += len;
                }
            });
            for i in 0..n {
                let id = NodeId::new(i as u32);
                if self.halted[i] || self.ledger.is_corrupted(id) {
                    continue;
                }
                if self.nodes[i].halted() {
                    self.record_halt(round, i);
                }
            }
        } else {
            for i in 0..n {
                let id = NodeId::new(i as u32);
                if self.halted[i] || self.ledger.is_corrupted(id) {
                    continue;
                }
                self.nodes[i].receive(round, arrivals.inbox(id), &mut self.node_rngs[i]);
                if self.nodes[i].halted() {
                    self.record_halt(round, i);
                }
            }
        }
        self.probe.phase_end(round, RoundPhase::Receive);

        // Phase 4: metrics, and the oracle's end-of-round observation
        // (the arrivals mailbox is still at hand here).
        let halted_honest = self
            .halted
            .iter()
            .enumerate()
            .filter(|(i, h)| **h && !self.ledger.is_corrupted(NodeId::new(*i as u32)))
            .count();
        let round_metrics = RoundMetrics {
            messages: round_messages,
            bits: round_bits,
            max_edge_bits: round_max_edge,
            corruptions: self.ledger.used() - corruptions_before,
            halted_honest,
            delivered: delivery_stats.delivered,
            dropped: delivery_stats.dropped,
            delayed: delivery_stats.delayed,
        };
        self.oracle.observe_round(&RoundCtx {
            round,
            n,
            t: self.cfg.t,
            arrivals: &arrivals,
            metrics: &round_metrics,
            ledger: &self.ledger,
            halted: &self.halted,
            outputs: &self.outputs,
            _msg: std::marker::PhantomData,
        });
        self.probe.round_end(round, &round_metrics);
        self.metrics.absorb(round_metrics, self.cfg.record_rounds);
        // The arrivals mailbox becomes next round's pooled wire mailbox.
        self.mailbox_pool = arrivals;

        self.round = round.next();
        if self.all_honest_halted() || self.round.index() >= self.cfg.max_rounds {
            self.done = true;
        }
        !self.done
    }

    /// Runs to completion and produces the report.
    pub fn run(self) -> RunReport
    where
        P: Send,
        P::Msg: Send + Sync,
        L: Sync,
    {
        self.run_with_oracle().0
    }

    /// Runs to completion, returning the report and the oracle (with
    /// whatever it recorded or concluded).
    pub fn run_with_oracle(self) -> (RunReport, O)
    where
        P: Send,
        P::Msg: Send + Sync,
        L: Sync,
    {
        let (report, oracle, _) = self.run_instrumented();
        (report, oracle)
    }

    /// Runs to completion, returning the report, the oracle, and the
    /// probe (with whatever each recorded).
    pub fn run_instrumented(mut self) -> (RunReport, O, B)
    where
        P: Send,
        P::Msg: Send + Sync,
        L: Sync,
    {
        while self.step() {}
        self.into_parts()
    }

    /// Finalizes a (possibly partially stepped) simulation into a report.
    pub fn into_report(self) -> RunReport {
        self.into_parts().0
    }

    /// Finalizes into the report plus the oracle (the probe is dropped).
    pub fn into_report_and_oracle(self) -> (RunReport, O) {
        let (report, oracle, _) = self.into_parts();
        (report, oracle)
    }

    /// Finalizes into the report, the oracle, and the probe. The
    /// oracle's [`Oracle::observe_end`] and the probe's
    /// [`Probe::run_end`] hooks fire here, on the finished report.
    pub fn into_parts(mut self) -> (RunReport, O, B) {
        let honest: Vec<bool> = (0..self.cfg.n)
            .map(|i| !self.ledger.is_corrupted(NodeId::new(i as u32)))
            .collect();
        let outputs: Vec<Option<bool>> = self
            .nodes
            .iter()
            .zip(&honest)
            .map(|(node, h)| if *h { node.output() } else { None })
            .collect();
        let all_halted = self
            .halted
            .iter()
            .zip(&honest)
            .all(|(halted, h)| !*h || *halted);
        let report = RunReport {
            rounds: self.round.index(),
            all_halted,
            outputs,
            honest,
            corruptions_used: self.ledger.used(),
            halt_rounds: self.halt_rounds,
            metrics: self.metrics,
            trace: self.trace,
        };
        self.oracle.observe_end(&report);
        self.probe.run_end(&report);
        (report, self.oracle, self.probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryAction, Benign, CorruptSend};
    use crate::mailbox::Inbox;
    use crate::message::{Emission, Message};
    use rand::RngCore;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Val(u8);
    impl Message for Val {
        fn bit_size(&self) -> usize {
            8
        }
    }

    /// Broadcasts its input for `rounds_to_run` rounds, then outputs the
    /// majority of the last round's values.
    #[derive(Debug, Clone)]
    struct Maj {
        input: bool,
        n: usize,
        rounds_to_run: u64,
        out: Option<bool>,
        halted: bool,
    }

    impl Protocol for Maj {
        type Msg = Val;
        fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Val> {
            Emission::Broadcast(Val(self.input as u8))
        }
        fn receive(&mut self, r: Round, inbox: Inbox<'_, Val>, _rng: &mut dyn RngCore) {
            if r.index() + 1 >= self.rounds_to_run {
                let ones = inbox.iter().filter(|(_, m)| m.0 == 1).count();
                self.out = Some(2 * ones >= self.n);
                self.halted = true;
            }
        }
        fn output(&self) -> Option<bool> {
            self.out
        }
        fn halted(&self) -> bool {
            self.halted
        }
    }

    fn maj_nodes(n: usize, ones: usize, rounds: u64) -> Vec<Maj> {
        (0..n)
            .map(|i| Maj {
                input: i < ones,
                n,
                rounds_to_run: rounds,
                out: None,
                halted: false,
            })
            .collect()
    }

    #[test]
    fn benign_run_reaches_majority() {
        let report = Simulation::new(SimConfig::new(7, 0), maj_nodes(7, 5, 1), Benign).run();
        assert!(report.all_halted);
        assert_eq!(report.rounds, 1);
        assert!(report.outputs.iter().all(|o| *o == Some(true)));
        assert_eq!(report.completion_round(), Some(0));
        // 7 broadcasts of 6 messages each.
        assert_eq!(report.metrics.total_messages, 42);
        assert_eq!(report.metrics.max_edge_bits, 8);
    }

    #[test]
    fn round_cap_marks_non_termination() {
        // Nodes that never halt.
        #[derive(Debug)]
        struct Forever;
        impl Protocol for Forever {
            type Msg = Val;
            fn emit(&mut self, _: Round, _: &mut dyn RngCore) -> Emission<Val> {
                Emission::Silent
            }
            fn receive(&mut self, _: Round, _: Inbox<'_, Val>, _: &mut dyn RngCore) {}
            fn output(&self) -> Option<bool> {
                None
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let cfg = SimConfig::new(3, 0).with_max_rounds(5);
        let report = Simulation::new(cfg, vec![Forever, Forever, Forever], Benign).run();
        assert!(!report.all_halted);
        assert_eq!(report.rounds, 5);
        assert_eq!(report.completion_round(), None);
    }

    /// An adversary that corrupts node 0 in round 0 and makes it
    /// equivocate.
    struct CorruptZero;
    impl Adversary<Maj> for CorruptZero {
        fn act(
            &mut self,
            view: &RoundView<'_, Maj>,
            _rng: &mut dyn RngCore,
        ) -> AdversaryAction<Val> {
            if view.round == Round::ZERO {
                AdversaryAction {
                    corruptions: vec![NodeId::new(0)],
                    sends: vec![(
                        NodeId::new(0),
                        CorruptSend::PerRecipient(vec![
                            (NodeId::new(1), Val(1)),
                            (NodeId::new(2), Val(0)),
                        ]),
                    )],
                }
            } else {
                AdversaryAction::pass()
            }
        }
        fn name(&self) -> &'static str {
            "corrupt-zero"
        }
    }

    #[test]
    fn corruption_replaces_emission_and_freezes_node() {
        let cfg = SimConfig::new(3, 1).with_trace(true);
        // All inputs true; node 0 equivocates 1/0 to nodes 1/2.
        let report = Simulation::new(cfg, maj_nodes(3, 3, 1), CorruptZero).run();
        assert_eq!(report.corruptions_used, 1);
        assert!(!report.honest[0]);
        // Node 1 saw {v0:1, v1:1, v2:1} -> true; node 2 saw {v0:0, v1:1, v2:1} -> true.
        assert_eq!(report.outputs[1], Some(true));
        assert_eq!(report.outputs[2], Some(true));
        // Corrupted node has no output.
        assert_eq!(report.outputs[0], None);
        assert_eq!(report.trace.corruptions().count(), 1);
    }

    #[test]
    #[should_panic(expected = "corruption rules")]
    fn budget_violation_panics() {
        struct Greedy;
        impl Adversary<Maj> for Greedy {
            fn act(&mut self, v: &RoundView<'_, Maj>, _: &mut dyn RngCore) -> AdversaryAction<Val> {
                AdversaryAction {
                    corruptions: (0..v.n() as u32).map(NodeId::new).collect(),
                    sends: vec![],
                }
            }
        }
        let _ = Simulation::new(SimConfig::new(4, 1), maj_nodes(4, 2, 2), Greedy).run();
    }

    #[test]
    #[should_panic(expected = "send rules")]
    fn send_from_honest_panics() {
        struct Imposter;
        impl Adversary<Maj> for Imposter {
            fn act(&mut self, _: &RoundView<'_, Maj>, _: &mut dyn RngCore) -> AdversaryAction<Val> {
                AdversaryAction {
                    corruptions: vec![],
                    sends: vec![(NodeId::new(1), CorruptSend::Broadcast(Val(0)))],
                }
            }
        }
        let _ = Simulation::new(SimConfig::new(3, 1), maj_nodes(3, 2, 2), Imposter).run();
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = |seed| {
            let cfg = SimConfig::new(5, 1).with_seed(seed);
            let r = Simulation::new(cfg, maj_nodes(5, 3, 2), CorruptZero).run();
            (r.rounds, r.outputs.clone(), r.metrics.total_messages)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn non_rushing_hides_current_round_messages() {
        struct AssertNoOutgoing;
        impl Adversary<Maj> for AssertNoOutgoing {
            fn act(&mut self, v: &RoundView<'_, Maj>, _: &mut dyn RngCore) -> AdversaryAction<Val> {
                assert!(v.outgoing.is_none());
                AdversaryAction::pass()
            }
        }
        let cfg = SimConfig::new(3, 0).with_info_model(InfoModel::NonRushing);
        let report = Simulation::new(cfg, maj_nodes(3, 2, 1), AssertNoOutgoing).run();
        assert!(report.all_halted);
    }

    #[test]
    fn rushing_exposes_current_round_messages() {
        struct AssertOutgoing;
        impl Adversary<Maj> for AssertOutgoing {
            fn act(&mut self, v: &RoundView<'_, Maj>, _: &mut dyn RngCore) -> AdversaryAction<Val> {
                let mb = v.outgoing.expect("rushing view must carry messages");
                assert_eq!(mb.message_count(), v.n() * (v.n() - 1));
                AdversaryAction::pass()
            }
        }
        let report =
            Simulation::new(SimConfig::new(4, 0), maj_nodes(4, 2, 1), AssertOutgoing).run();
        assert!(report.all_halted);
    }

    #[test]
    fn try_new_validates() {
        assert!(matches!(
            Simulation::try_new(SimConfig::new(0, 0), Vec::<Maj>::new(), Benign),
            Err(SimError::BadNetworkSize { .. })
        ));
        assert!(matches!(
            Simulation::try_new(SimConfig::new(3, 0), maj_nodes(2, 1, 1), Benign),
            Err(SimError::NodeCountMismatch { .. })
        ));
    }

    #[test]
    fn honest_outputs_helpers() {
        let report = Simulation::new(SimConfig::new(5, 1), maj_nodes(5, 4, 1), CorruptZero).run();
        let outs = report.honest_outputs();
        assert_eq!(outs.len(), 4, "corrupted node 0 excluded");
        assert!(report.honest_outputs_agree());
    }

    #[test]
    fn step_api_is_incremental() {
        let mut sim = Simulation::new(SimConfig::new(3, 0), maj_nodes(3, 2, 3), Benign);
        assert!(!sim.is_done());
        assert!(sim.step());
        assert_eq!(sim.round().index(), 1);
        assert!(sim.step());
        assert!(!sim.step()); // third round halts everyone
        assert!(sim.is_done());
        let report = sim.into_report();
        assert!(report.all_halted);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn delivery_stage_seam_is_exercised() {
        use crate::delivery::{Delivery, DeliveryStats};

        /// A network that destroys every message ("blackout").
        struct Blackout;
        impl<M: Message> Delivery<M> for Blackout {
            fn deliver(
                &mut self,
                _round: Round,
                wire: RoundMailbox<M>,
                _ledger: &CorruptionLedger,
            ) -> (RoundMailbox<M>, DeliveryStats) {
                let dropped = wire.message_count();
                (
                    RoundMailbox::new(wire.n()),
                    DeliveryStats {
                        dropped,
                        ..DeliveryStats::default()
                    },
                )
            }
            fn name(&self) -> &'static str {
                "blackout"
            }
        }

        // All inputs true, but nobody hears anyone: the majority tally
        // sees an empty inbox, so every node outputs false — proof that
        // the arrivals mailbox (not the wire mailbox) feeds `receive`.
        let report =
            Simulation::with_network(SimConfig::new(5, 0), maj_nodes(5, 5, 1), Benign, Blackout)
                .run();
        assert!(report.all_halted);
        assert!(report.outputs.iter().all(|o| *o == Some(false)));
        assert_eq!(
            report.metrics.total_messages, 20,
            "offered load still counted"
        );
        assert_eq!(report.metrics.total_delivered, 0);
        assert_eq!(report.metrics.total_dropped, 20);
    }

    #[test]
    fn pass_through_counts_every_message_delivered() {
        let report = Simulation::new(SimConfig::new(7, 0), maj_nodes(7, 5, 1), Benign).run();
        assert_eq!(
            report.metrics.total_delivered,
            report.metrics.total_messages
        );
        assert_eq!(report.metrics.total_dropped, 0);
        assert_eq!(report.metrics.total_delayed, 0);
    }

    #[test]
    fn live_honest_view_excludes_corrupted_and_halted() {
        struct Check;
        impl Adversary<Maj> for Check {
            fn act(&mut self, v: &RoundView<'_, Maj>, _: &mut dyn RngCore) -> AdversaryAction<Val> {
                if v.round == Round::ZERO {
                    AdversaryAction {
                        corruptions: vec![NodeId::new(2)],
                        sends: vec![],
                    }
                } else {
                    let live: Vec<_> = v.live_honest().collect();
                    assert_eq!(live, vec![NodeId::new(0), NodeId::new(1)]);
                    AdversaryAction::pass()
                }
            }
        }
        let report = Simulation::new(SimConfig::new(3, 1), maj_nodes(3, 3, 2), Check).run();
        assert!(report.all_halted);
    }
}
