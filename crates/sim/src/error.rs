//! Error type for simulator configuration and adversary-action validation.

use crate::id::{NodeId, Round};
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The network size is zero or otherwise unusable.
    BadNetworkSize {
        /// Requested number of nodes.
        n: usize,
    },
    /// The number of protocol nodes does not match the configured `n`.
    NodeCountMismatch {
        /// Configured network size.
        expected: usize,
        /// Nodes actually supplied.
        got: usize,
    },
    /// The adversary tried to corrupt more nodes than its budget allows.
    BudgetExceeded {
        /// Corruption budget `t`.
        budget: usize,
        /// Corruptions requested in total.
        requested: usize,
        /// Round at which the violation happened.
        round: Round,
    },
    /// The adversary tried to send on behalf of a node it does not control.
    SendFromHonest {
        /// The node the adversary tried to puppet.
        node: NodeId,
        /// Round at which the violation happened.
        round: Round,
    },
    /// A node ID outside `0..n` was referenced.
    UnknownNode {
        /// The offending ID.
        node: NodeId,
        /// Network size.
        n: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadNetworkSize { n } => write!(f, "invalid network size n={n}"),
            SimError::NodeCountMismatch { expected, got } => {
                write!(f, "expected {expected} protocol nodes, got {got}")
            }
            SimError::BudgetExceeded {
                budget,
                requested,
                round,
            } => write!(
                f,
                "adversary requested {requested} total corruptions at {round}, budget is {budget}"
            ),
            SimError::SendFromHonest { node, round } => {
                write!(
                    f,
                    "adversary tried to send as honest node {node} at {round}"
                )
            }
            SimError::UnknownNode { node, n } => {
                write!(f, "node {node} out of range for n={n}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::BudgetExceeded {
            budget: 3,
            requested: 5,
            round: Round::new(2),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('5') && s.contains("r2"));

        let e = SimError::SendFromHonest {
            node: NodeId::new(4),
            round: Round::new(1),
        };
        assert!(e.to_string().contains("v4"));

        assert!(SimError::BadNetworkSize { n: 0 }
            .to_string()
            .contains("n=0"));
        assert!(SimError::NodeCountMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("expected 4"));
        assert!(SimError::UnknownNode {
            node: NodeId::new(9),
            n: 4
        }
        .to_string()
        .contains("n=4"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(SimError::BadNetworkSize { n: 0 });
    }
}
