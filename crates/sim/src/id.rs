//! Strongly-typed identifiers used across the simulator.
//!
//! Nodes carry a dense ID in `0..n` (the paper assumes unique IDs known to
//! everyone; dense integers are the canonical choice and make committee
//! partitioning by ID range trivial). Rounds are a simple counter starting
//! at zero.

use std::fmt;

/// Identity of a node in the complete network. Dense in `0..n`.
///
/// The receiver of any message learns the sender's `NodeId` from the
/// transport (engine), matching the authenticated-channel assumption of
/// the paper's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node ID from its dense index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node, in `0..n`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A synchronous round number, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(u64);

impl Round {
    /// The first round.
    pub const ZERO: Round = Round(0);

    /// Creates a round from its index.
    pub fn new(r: u64) -> Self {
        Round(r)
    }

    /// Index of this round.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The round after this one.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl From<u64> for Round {
    fn from(v: u64) -> Self {
        Round(v)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.to_string(), "v42");
    }

    #[test]
    fn node_id_ordering_is_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn round_advances() {
        let r = Round::ZERO;
        assert_eq!(r.index(), 0);
        assert_eq!(r.next().index(), 1);
        assert_eq!(r.next(), Round::new(1));
        assert_eq!(Round::new(3).to_string(), "r3");
    }

    #[test]
    fn round_default_is_zero() {
        assert_eq!(Round::default(), Round::ZERO);
        assert_eq!(NodeId::default().index(), 0);
    }
}
