//! Deterministic randomness derivation.
//!
//! Every run of the simulator is a pure function of `(config, master
//! seed)`. Each node and the adversary get independent streams derived
//! from the master seed with SplitMix64, so adding or removing one
//! consumer never perturbs another's stream — essential for reproducible
//! experiments and for reproducible failure cases.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator; also a high-quality 64-bit mixer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a master seed with a stream identifier into an independent seed.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// Stream identifier space: nodes use their index, the adversary and the
/// engine use reserved high streams.
pub mod streams {
    /// Stream for the adversary's own randomness.
    pub const ADVERSARY: u64 = u64::MAX;
    /// Stream for engine-internal randomness (tie-breaking, sampling).
    pub const ENGINE: u64 = u64::MAX - 1;
    /// Stream for input assignment.
    pub const INPUTS: u64 = u64::MAX - 2;
    /// Stream for the network model (drop/delay decisions). Kept apart
    /// from every node and adversary stream so enabling a network model
    /// never perturbs protocol or adversary randomness.
    pub const NETWORK: u64 = u64::MAX - 3;
    /// Stream for sampled-committee selection (King–Saia-style
    /// protocols): the public committee is a pure function of
    /// `(master seed, this stream)`, so every node — and the
    /// full-information adversary — derives the same committee without
    /// perturbing any node, adversary, or network stream.
    pub const COMMITTEE_SAMPLE: u64 = u64::MAX - 4;
}

/// Creates the RNG for a given stream of a master seed.
pub fn rng_for(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

/// Creates the per-node RNG.
pub fn node_rng(master: u64, node_index: usize) -> SmallRng {
    rng_for(master, node_index as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        let mut a = node_rng(42, 7);
        let mut b = node_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        assert_ne!(derive_seed(42, streams::ADVERSARY), derive_seed(42, 0));
    }

    #[test]
    fn splitmix_known_sequence_progresses() {
        let mut s = 0u64;
        let x1 = splitmix64(&mut s);
        let x2 = splitmix64(&mut s);
        assert_ne!(x1, x2);
        // Reference value of SplitMix64 from seed 0, first output.
        assert_eq!(x1, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn node_streams_are_pairwise_distinct_for_small_networks() {
        #[allow(clippy::disallowed_methods)]
        // aba-lint: allow(hash-nondeterminism) — collision probe only; iteration order never observed
        let mut seen = std::collections::HashSet::new();
        for i in 0..1024 {
            assert!(seen.insert(derive_seed(9, i)), "collision at stream {i}");
        }
    }
}
