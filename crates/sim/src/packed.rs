//! The bit-packed binary message plane.
//!
//! For binary BA the effective message alphabet is a few bits, yet the
//! dense [`RoundMailbox`](crate::mailbox::RoundMailbox) stores a full
//! message enum per deviation cell and resolves tallies by iterating
//! `n` senders per receiver. [`PackedMailbox`] specializes the plane
//! for messages that fit a 32-bit code ([`PackedMessage`]):
//!
//! * **Row layout.** Per sender: an optional broadcast base (stored
//!   both decoded, for by-reference access, and as its packed code, for
//!   tallies) plus two u64-word bitset lanes over receivers — `dev`
//!   (this cell deviates from the base) and `has` (an explicit message
//!   is present; `has ⊆ dev`, and `dev ∧ ¬has` marks a knock-out).
//!   Explicit cells store their packed codes in a per-row arena that is
//!   materialized only when a row first deviates.
//! * **Column mirrors.** The same `dev`/`has` bits are maintained
//!   column-major (word `w` of receiver `r` covers senders
//!   `64w..64w+64`), updated incrementally on every mutation, so a
//!   receiver-side tally never walks rows.
//! * **Word-parallel tallies.** A threshold/majority query is a masked
//!   count — *how many senders' messages `code` satisfy
//!   `code & mask == bits`?* — answered per receiver as
//!   `popcount(matching-bases ∧ ¬dev-column)` plus a walk of the (rare)
//!   explicit cells. The matching-bases bitset is computed once per
//!   query shape per round and cached; with zero deviations the whole
//!   tally is `n/64` popcounts.
//! * **Pooling.** Like the dense plane, [`MessagePlane::reset`] keeps
//!   every allocation; after warm-up a synchronous round allocates
//!   nothing.
//!
//! The plane reproduces the dense mailbox's observable semantics
//! exactly — counting convention, replace/merge/knock-out rules, inbox
//! order — which `crates/sim/tests/packed_differential.rs` enforces
//! over the whole mutation surface.
//!
//! # Codec contract
//!
//! `PackedMessage::unpack(pack(m)) == m` must hold for every message
//! the protocol family can emit. Inserting a message whose
//! [`PackedMessage::pack`] returns `None` **panics**: the packed plane
//! is an opt-in hot path for protocol families whose whole alphabet is
//! known to fit (committee-BA phase counters cap far below the codec's
//! 18-bit phase field), and silently spilling to a side table would
//! cost every tally its word-parallelism.

use crate::id::NodeId;
use crate::mailbox::Inbox;
use crate::message::{Emission, Message};
use crate::plane::MessagePlane;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// A message with a lossless 32-bit packed encoding.
pub trait PackedMessage: Message + PartialEq {
    /// Packs the message into a 32-bit code, or `None` if this value
    /// does not fit the codec.
    fn pack(&self) -> Option<u32>;

    /// Inverse of [`PackedMessage::pack`]: `unpack(pack(m)) == m` must
    /// hold whenever `pack` succeeds.
    fn unpack(code: u32) -> Self;
}

/// Per-round cache of masked-count query bitsets (one bit per sender
/// whose broadcast-base code matches), invalidated by any mutation.
#[derive(Debug, Default)]
struct QueryCache {
    /// Plane edit epoch the live entries were built against; a mismatch
    /// with [`PackedMailbox::epoch`] means every entry is stale. Kept
    /// inside the lock so mutators never have to take it — they bump the
    /// plane epoch (a plain store through `&mut self`) instead.
    built_epoch: u64,
    /// Entries `0..live` are valid for `built_epoch`; later entries are
    /// retained buffers from earlier rounds.
    live: usize,
    entries: Vec<(u32, u32, Arc<Vec<u64>>)>,
}

/// Recovers a poisoned lock: the cache holds pure derived data, so a
/// panicked holder cannot leave it logically corrupt (the next
/// invalidation or rebuild overwrites it).
fn lock_cache(m: &Mutex<QueryCache>) -> std::sync::MutexGuard<'_, QueryCache> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The bit-packed message plane. See the module docs for the layout.
pub struct PackedMailbox<M> {
    n: usize,
    /// Words per bitset lane: `ceil(n / 64)`.
    words: usize,
    /// Per-sender broadcast base, decoded (for by-reference access).
    base: Vec<Option<M>>,
    /// Packed code of the base; valid iff `base[s].is_some()`.
    base_code: Vec<u32>,
    /// One bit per sender with a base.
    base_mask: Vec<u64>,
    /// Whether the row's deviation lanes are live this round.
    dense: Vec<bool>,
    /// Row-major deviation bits, `n * words` (empty until first use).
    dev: Vec<u64>,
    /// Row-major explicit-message bits, subset of `dev`.
    has: Vec<u64>,
    /// Column-major mirror of `dev` (receiver-major over senders).
    col_dev: Vec<u64>,
    /// Column-major mirror of `has`.
    col_has: Vec<u64>,
    /// Per-row explicit-cell codes, materialized on first deviation.
    codes: Vec<Vec<u32>>,
    row_count: Vec<usize>,
    row_bits: Vec<usize>,
    row_max: Vec<usize>,
    row_max_dirty: Vec<bool>,
    count: usize,
    bits: usize,
    max_cache: usize,
    max_dirty: bool,
    /// Edit counter: bumped by every mutation (`begin_edit` / `reset`),
    /// compared against [`QueryCache::built_epoch`] on the query path —
    /// so invalidation is a plain increment, never a lock.
    epoch: u64,
    queries: Mutex<QueryCache>,
}

impl<M> Default for PackedMailbox<M> {
    /// An empty zero-node plane — the pooling placeholder. Call
    /// [`MessagePlane::reset`] to size it before use.
    fn default() -> Self {
        PackedMailbox {
            n: 0,
            words: 0,
            base: Vec::new(),
            base_code: Vec::new(),
            base_mask: Vec::new(),
            dense: Vec::new(),
            dev: Vec::new(),
            has: Vec::new(),
            col_dev: Vec::new(),
            col_has: Vec::new(),
            codes: Vec::new(),
            row_count: Vec::new(),
            row_bits: Vec::new(),
            row_max: Vec::new(),
            row_max_dirty: Vec::new(),
            count: 0,
            bits: 0,
            max_cache: 0,
            max_dirty: false,
            epoch: 0,
            queries: Mutex::new(QueryCache::default()),
        }
    }
}

impl<M> std::fmt::Debug for PackedMailbox<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedMailbox")
            .field("n", &self.n)
            .field("count", &self.count)
            .field("bits", &self.bits)
            .finish_non_exhaustive()
    }
}

/// One cell's state, decoded from the bit lanes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CellState {
    Inherit,
    Knocked,
    Code(u32),
}

/// The word mask selecting senders `range ∩ [64w, 64w + 64)`.
fn range_word(range: &Range<u32>, w: usize) -> u64 {
    let lo = range.start as usize;
    let hi = range.end as usize;
    let word_lo = w * 64;
    let word_hi = word_lo + 64;
    let lo = lo.max(word_lo);
    let hi = hi.min(word_hi);
    if lo >= hi {
        return 0;
    }
    let span = hi - lo;
    let m = if span == 64 {
        !0u64
    } else {
        (1u64 << span) - 1
    };
    m << (lo - word_lo)
}

// ---------------------------------------------------------------------
// Bound-free internals: everything that operates on codes and bitsets
// without decoding (used by `Inbox` whatever the message bound).
// ---------------------------------------------------------------------
impl<M: Message> PackedMailbox<M> {
    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    fn bit(&self, lane: &[u64], row: usize, idx: usize) -> bool {
        if lane.is_empty() {
            return false;
        }
        lane[row * self.words + idx / 64] & (1u64 << (idx % 64)) != 0
    }

    fn cell_state(&self, s: usize, r: usize) -> CellState {
        if !self.dense[s] || !self.bit(&self.dev, s, r) {
            CellState::Inherit
        } else if self.bit(&self.has, s, r) {
            CellState::Code(self.codes[s][r])
        } else {
            CellState::Knocked
        }
    }

    /// The effective code `receiver` gets from `sender`, if any.
    fn effective_code(&self, s: usize, r: usize) -> Option<u32> {
        match self.cell_state(s, r) {
            CellState::Inherit => self.base[s].is_some().then(|| self.base_code[s]),
            CellState::Knocked => None,
            CellState::Code(c) => Some(c),
        }
    }

    /// Number of messages addressed to `receiver`: word-parallel, O(n/64).
    pub(crate) fn inbox_len(&self, receiver: NodeId) -> usize {
        let r = receiver.index();
        if self.col_dev.is_empty() {
            return self.base_mask.iter().map(|w| w.count_ones() as usize).sum();
        }
        let cd = &self.col_dev[r * self.words..(r + 1) * self.words];
        let ch = &self.col_has[r * self.words..(r + 1) * self.words];
        self.base_mask
            .iter()
            .zip(cd)
            .zip(ch)
            .map(|((b, d), h)| ((b & !d) | h).count_ones() as usize)
            .sum()
    }

    /// Decodes `receiver`'s inbox into `out`, in sender order.
    pub(crate) fn fill_inbox(
        &self,
        receiver: NodeId,
        decode: fn(u32) -> M,
        out: &mut Vec<(NodeId, M)>,
    ) {
        let r = receiver.index();
        let (cd, ch): (&[u64], &[u64]) = if self.col_dev.is_empty() {
            (&[], &[])
        } else {
            (
                &self.col_dev[r * self.words..(r + 1) * self.words],
                &self.col_has[r * self.words..(r + 1) * self.words],
            )
        };
        for w in 0..self.words {
            let d = cd.get(w).copied().unwrap_or(0);
            let h = ch.get(w).copied().unwrap_or(0);
            let mut present = (self.base_mask[w] & !d) | h;
            while present != 0 {
                let s = w * 64 + present.trailing_zeros() as usize;
                let m = if h & (1u64 << (s % 64)) != 0 {
                    decode(self.codes[s][r])
                } else {
                    self.base[s].clone().expect("present bit implies a base")
                };
                out.push((NodeId::new(s as u32), m));
                present &= present - 1;
            }
        }
    }

    /// The bitset of senders whose base code satisfies
    /// `code & mask == bits`, computed once per shape per round.
    fn query(&self, mask: u32, bits: u32) -> Arc<Vec<u64>> {
        let mut cache = lock_cache(&self.queries);
        if cache.built_epoch != self.epoch {
            cache.live = 0;
            cache.built_epoch = self.epoch;
        }
        for (m, b, set) in &cache.entries[..cache.live] {
            if *m == mask && *b == bits {
                return Arc::clone(set);
            }
        }
        let mut set = vec![0u64; self.words];
        for (w, slot) in set.iter_mut().enumerate() {
            let mut b = self.base_mask[w];
            while b != 0 {
                let s = w * 64 + b.trailing_zeros() as usize;
                if self.base_code[s] & mask == bits {
                    *slot |= 1u64 << (s % 64);
                }
                b &= b - 1;
            }
        }
        let set = Arc::new(set);
        let live = cache.live;
        if live < cache.entries.len() {
            cache.entries[live] = (mask, bits, Arc::clone(&set));
        } else {
            cache.entries.push((mask, bits, Arc::clone(&set)));
        }
        cache.live = live + 1;
        set
    }

    /// How many senders (optionally restricted to `senders`) delivered
    /// `receiver` a message whose code satisfies `code & mask == bits`.
    /// Word-parallel over broadcast bases; explicit cells are checked
    /// individually.
    pub(crate) fn match_count(
        &self,
        receiver: NodeId,
        mask: u32,
        bits: u32,
        senders: Option<Range<u32>>,
    ) -> usize {
        let r = receiver.index();
        let q = self.query(mask, bits);
        let (cd, ch): (&[u64], &[u64]) = if self.col_dev.is_empty() {
            (&[], &[])
        } else {
            (
                &self.col_dev[r * self.words..(r + 1) * self.words],
                &self.col_has[r * self.words..(r + 1) * self.words],
            )
        };
        let mut total = 0usize;
        for w in 0..self.words {
            let rng = match &senders {
                Some(range) => range_word(range, w),
                None => !0u64,
            };
            if rng == 0 {
                continue;
            }
            let d = cd.get(w).copied().unwrap_or(0);
            total += (q[w] & !d & rng).count_ones() as usize;
            let mut h = ch.get(w).copied().unwrap_or(0) & rng;
            while h != 0 {
                let s = w * 64 + h.trailing_zeros() as usize;
                if self.codes[s][r] & mask == bits {
                    total += 1;
                }
                h &= h - 1;
            }
        }
        total
    }
}

// ---------------------------------------------------------------------
// Mutation surface (needs the codec).
// ---------------------------------------------------------------------
impl<M: PackedMessage> PackedMailbox<M> {
    /// Creates an empty plane for an `n`-node network.
    pub fn new(n: usize) -> Self {
        let mut p = Self::default();
        MessagePlane::reset(&mut p, n);
        p
    }

    /// Packs `m`, panicking on codec overflow (see the module docs).
    fn code_of(m: &M) -> u32 {
        let code = m.pack().unwrap_or_else(|| {
            panic!("message does not fit the packed plane's 32-bit codec: {m:?}")
        });
        debug_assert!(
            M::unpack(code) == *m,
            "packed codec is lossy for {m:?} (code {code:#x})"
        );
        code
    }

    fn bit_size_of_code(code: u32) -> usize {
        M::unpack(code).bit_size()
    }

    /// Materializes the bit lanes and row `me`'s code arena.
    fn ensure_dense(&mut self, me: usize) {
        if self.dev.is_empty() {
            let len = self.n * self.words;
            self.dev.resize(len, 0);
            self.has.resize(len, 0);
            self.col_dev.resize(len, 0);
            self.col_has.resize(len, 0);
        }
        if self.codes[me].is_empty() {
            self.codes[me].resize(self.n, 0);
        }
        self.dense[me] = true;
    }

    fn set_dev(&mut self, s: usize, r: usize, on: bool) {
        let (rw, rb) = (s * self.words + r / 64, 1u64 << (r % 64));
        let (cw, cb) = (r * self.words + s / 64, 1u64 << (s % 64));
        if on {
            self.dev[rw] |= rb;
            self.col_dev[cw] |= cb;
        } else {
            self.dev[rw] &= !rb;
            self.col_dev[cw] &= !cb;
        }
    }

    fn set_has(&mut self, s: usize, r: usize, on: bool) {
        let (rw, rb) = (s * self.words + r / 64, 1u64 << (r % 64));
        let (cw, cb) = (r * self.words + s / 64, 1u64 << (s % 64));
        if on {
            self.has[rw] |= rb;
            self.col_has[cw] |= cb;
        } else {
            self.has[rw] &= !rb;
            self.col_has[cw] &= !cb;
        }
    }

    fn set_base(&mut self, s: usize, m: Option<M>) {
        match m {
            Some(m) => {
                self.base_code[s] = Self::code_of(&m);
                self.base[s] = Some(m);
                self.base_mask[s / 64] |= 1u64 << (s % 64);
            }
            None => {
                self.base[s] = None;
                self.base_mask[s / 64] &= !(1u64 << (s % 64));
            }
        }
    }

    /// Empties row `me`, clearing its bits in both lane orientations.
    fn clear_row(&mut self, me: usize) {
        if self.dense[me] {
            for w in 0..self.words {
                let mut d = self.dev[me * self.words + w];
                self.dev[me * self.words + w] = 0;
                self.has[me * self.words + w] = 0;
                while d != 0 {
                    let r = w * 64 + d.trailing_zeros() as usize;
                    self.col_dev[r * self.words + me / 64] &= !(1u64 << (me % 64));
                    self.col_has[r * self.words + me / 64] &= !(1u64 << (me % 64));
                    d &= d - 1;
                }
            }
            self.dense[me] = false;
        }
        self.set_base(me, None);
        self.row_count[me] = 0;
        self.row_bits[me] = 0;
        self.row_max[me] = 0;
        self.row_max_dirty[me] = false;
    }

    /// The exact row maximum, rescanning if a removal dirtied it.
    fn row_current_max(&self, me: usize) -> usize {
        if !self.row_max_dirty[me] {
            return self.row_max[me];
        }
        let base_bits = self.base[me].as_ref().map_or(0, Message::bit_size);
        let dev_count: usize = if self.dense[me] {
            self.dev[me * self.words..(me + 1) * self.words]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum()
        } else {
            0
        };
        let mut max = if self.base[me].is_some() && (!self.dense[me] || dev_count < self.n) {
            base_bits
        } else {
            0
        };
        if self.dense[me] {
            for w in 0..self.words {
                let mut h = self.has[me * self.words + w];
                while h != 0 {
                    let r = w * 64 + h.trailing_zeros() as usize;
                    max = max.max(Self::bit_size_of_code(self.codes[me][r]));
                    h &= h - 1;
                }
            }
        }
        max
    }

    /// Counter fold around a row edit, mirroring the dense
    /// `edit_row`: subtract the row from the global counters, run the
    /// edit, add it back, and track the max-cache validity.
    fn begin_edit(&mut self, me: usize) -> usize {
        self.epoch = self.epoch.wrapping_add(1);
        self.count -= self.row_count[me];
        self.bits -= self.row_bits[me];
        // NOTE: the rescan result must NOT be memoized into
        // `row_max[me]` (clearing the dirty flag): the mutators below
        // deliberately leave `row_max` as an upper bound and count on
        // the persistent dirty flag to force rescans — exactly like the
        // dense rows, whose observable `max_edge_bits` stream the packed
        // plane must reproduce bit-for-bit.
        self.row_current_max(me)
    }

    fn end_edit(&mut self, me: usize, old_max: usize) {
        self.count += self.row_count[me];
        self.bits += self.row_bits[me];
        if self.row_max_dirty[me] || self.row_max[me] < old_max {
            self.max_dirty = true;
        } else if !self.max_dirty {
            self.max_cache = self.max_cache.max(self.row_max[me]);
        }
    }

    /// `(counted, bits)` contribution of receiver `r` in row `me` — the
    /// base self-copy is free, explicit messages are not.
    fn contribution(&self, me: usize, r: usize) -> (bool, usize) {
        let via_base = matches!(self.cell_state(me, r), CellState::Inherit);
        match self.effective_code(me, r) {
            None => (false, 0),
            Some(code) => {
                if via_base && r == me {
                    (false, 0)
                } else if via_base {
                    (true, self.base[me].as_ref().map_or(0, Message::bit_size))
                } else {
                    (true, Self::bit_size_of_code(code))
                }
            }
        }
    }

    fn is_silent_row(&self, me: usize) -> bool {
        self.row_count[me] == 0 && self.effective_code(me, me).is_none()
    }

    /// Adds each sender's offered traffic (this plane as the *wire*
    /// mailbox, pre-delivery) to `scan`'s per-sender counters. O(n);
    /// sums exactly to the plane's `message_count` / `total_bits`.
    pub(crate) fn tally_offered_into(&self, scan: &mut crate::arrivals::ArrivalScan) {
        for s in 0..self.n {
            if self.row_count[s] != 0 {
                scan.add_sent(s, self.row_count[s] as u32, self.row_bits[s] as u64);
            }
        }
    }

    /// Fills `scan`'s arrival bitsets and per-receiver delivered
    /// counters from this plane as the *arrivals* mailbox
    /// (post-delivery). Word-parallel: the column-mirrored deviation
    /// lanes OR straight into the scan's receiver rows, so the cost is
    /// O(n·words) word ops plus one decode per explicit cell.
    pub(crate) fn scan_arrivals_into(&self, scan: &mut crate::arrivals::ArrivalScan) {
        for (w, &word) in self.base_mask.iter().enumerate() {
            let mut b = word;
            while b != 0 {
                let s = w * 64 + b.trailing_zeros() as usize;
                let bs = self.base[s].as_ref().map_or(0, Message::bit_size);
                scan.mark_base(s, bs as u32);
                b &= b - 1;
            }
        }
        if !self.col_dev.is_empty() {
            for r in 0..self.n {
                for w in 0..self.words {
                    // Knocked bits only matter where a base exists;
                    // explicit cells (has ⊆ dev) knock the base *and*
                    // land as extras with their own bit size.
                    scan.or_knocked_word(
                        r,
                        w,
                        self.col_dev[r * self.words + w] & self.base_mask[w],
                    );
                    let ex = self.col_has[r * self.words + w];
                    scan.or_extra_word(r, w, ex);
                    let mut e = ex;
                    while e != 0 {
                        let s = w * 64 + e.trailing_zeros() as usize;
                        // Self-copies never touch the network: in the
                        // bitsets, out of the delivered counters.
                        if s != r {
                            let bs = Self::bit_size_of_code(self.codes[s][r]);
                            scan.add_recv(r, 1, bs as u64);
                        }
                        e &= e - 1;
                    }
                }
            }
        }
        scan.finish_base_recv();
    }
}

impl<M: PackedMessage> MessagePlane<M> for PackedMailbox<M> {
    fn reset(&mut self, n: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if n != self.n {
            // Lane geometry depends on n; drop the bit lanes and rebuild
            // the per-sender vectors at the new size.
            self.words = n.div_ceil(64);
            self.dev.clear();
            self.has.clear();
            self.col_dev.clear();
            self.col_has.clear();
            self.base.clear();
            self.base.resize_with(n, || None);
            self.base_code.clear();
            self.base_code.resize(n, 0);
            self.base_mask.clear();
            self.base_mask.resize(self.words, 0);
            self.dense.clear();
            self.dense.resize(n, false);
            self.codes.clear();
            self.codes.resize_with(n, Vec::new);
            self.row_count.clear();
            self.row_count.resize(n, 0);
            self.row_bits.clear();
            self.row_bits.resize(n, 0);
            self.row_max.clear();
            self.row_max.resize(n, 0);
            self.row_max_dirty.clear();
            self.row_max_dirty.resize(n, false);
            self.n = n;
        } else if self.dense.iter().any(|d| *d) {
            // Same size, deviated rows present: sequential memsets over
            // the four bit-lane arrays beat `clear_row`'s per-bit column
            // unwinding as soon as a handful of rows deviated (a lossy
            // round dirties every row). Stale `codes` entries are
            // unreachable once their `has` bits are gone.
            self.dev.fill(0);
            self.has.fill(0);
            self.col_dev.fill(0);
            self.col_has.fill(0);
            self.base_mask.fill(0);
            self.dense.fill(false);
            for b in &mut self.base {
                *b = None;
            }
            self.row_count.fill(0);
            self.row_bits.fill(0);
            self.row_max.fill(0);
            self.row_max_dirty.fill(false);
        } else {
            for me in 0..n {
                if self.base[me].is_some() || self.row_max_dirty[me] {
                    self.clear_row(me);
                }
            }
        }
        self.count = 0;
        self.bits = 0;
        self.max_cache = 0;
        self.max_dirty = false;
    }

    fn n(&self) -> usize {
        self.n
    }

    fn set(&mut self, sender: NodeId, emission: Emission<M>) {
        let me = sender.index();
        match emission {
            Emission::Silent => MessagePlane::silence(self, sender),
            Emission::Broadcast(m) => {
                let old_max = self.begin_edit(me);
                self.clear_row(me);
                let bs = m.bit_size();
                self.row_count[me] = self.n.saturating_sub(1);
                self.row_bits[me] = bs * self.row_count[me];
                self.row_max[me] = bs;
                self.set_base(me, Some(m));
                self.end_edit(me, old_max);
            }
            Emission::PerRecipient(v) => {
                if v.is_empty() {
                    return MessagePlane::silence(self, sender);
                }
                let old_max = self.begin_edit(me);
                self.clear_row(me);
                self.ensure_dense(me);
                for (to, m) in v {
                    // Later entries override earlier ones.
                    let bs = m.bit_size();
                    let code = Self::code_of(&m);
                    let r = to.index();
                    match self.cell_state(me, r) {
                        CellState::Inherit | CellState::Knocked => {
                            self.row_count[me] += 1;
                            self.row_bits[me] += bs;
                        }
                        CellState::Code(old) => {
                            self.row_bits[me] += bs;
                            self.row_bits[me] -= Self::bit_size_of_code(old);
                            // The overridden duplicate may have held the
                            // running maximum; rescan lazily.
                            self.row_max_dirty[me] = true;
                        }
                    }
                    self.set_dev(me, r, true);
                    self.set_has(me, r, true);
                    self.codes[me][r] = code;
                    self.row_max[me] = self.row_max[me].max(bs);
                }
                self.end_edit(me, old_max);
            }
        }
    }

    fn silence(&mut self, sender: NodeId) {
        let me = sender.index();
        let old_max = self.begin_edit(me);
        self.clear_row(me);
        self.end_edit(me, old_max);
    }

    fn insert(&mut self, sender: NodeId, receiver: NodeId, m: M) {
        let me = sender.index();
        let r = receiver.index();
        let old_max = self.begin_edit(me);
        self.ensure_dense(me);
        let (counted, old_bits) = self.contribution(me, r);
        let bs = m.bit_size();
        let code = Self::code_of(&m);
        self.set_dev(me, r, true);
        self.set_has(me, r, true);
        self.codes[me][r] = code;
        if counted {
            self.row_bits[me] -= old_bits;
            self.row_count[me] -= 1;
            if old_bits >= bs && old_bits == self.row_max[me] {
                self.row_max_dirty[me] = true;
            }
        }
        self.row_count[me] += 1;
        self.row_bits[me] += bs;
        self.row_max[me] = self.row_max[me].max(bs);
        self.end_edit(me, old_max);
    }

    fn insert_if_vacant(&mut self, sender: NodeId, receiver: NodeId, m: M) -> Option<M> {
        let mut m = Some(m);
        let inserted = MessagePlane::insert_if_vacant_with(self, sender, receiver, || {
            m.take().expect("built once")
        });
        debug_assert_eq!(inserted, m.is_none());
        m
    }

    fn insert_if_vacant_with(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        make: impl FnOnce() -> M,
    ) -> bool {
        let me = sender.index();
        let r = receiver.index();
        if !self.dense[me] && self.base[me].is_some() {
            return false; // pure broadcast: every pair is occupied
        }
        match self.cell_state(me, r) {
            CellState::Code(_) => return false,
            CellState::Inherit if self.base[me].is_some() => return false,
            CellState::Inherit | CellState::Knocked => {}
        }
        // Vacant: an explicit message always counts (even a self-copy).
        // Direct counter path, skipping the `begin_edit` fold: a pure
        // add can never lower the row maximum, so no `old_max` snapshot
        // is needed — and crucially no dirty-row rescan. This is the
        // flight queue's drain primitive; paying `row_current_max`'s
        // full-row decode on every requeued delivery after a knock-out
        // dirtied the row is what made BoundedDelay slower packed than
        // dense. Mirrors the dense plane's identical fast path. A dirty
        // row implies the global cache is already dirty (`end_edit`
        // propagates row dirt and nothing clears it until reset), so
        // when `!max_dirty` the row maximum is exact and the cache
        // update is sound.
        let m = make();
        let bs = m.bit_size();
        let code = Self::code_of(&m);
        self.epoch = self.epoch.wrapping_add(1);
        self.ensure_dense(me);
        self.set_dev(me, r, true);
        self.set_has(me, r, true);
        self.codes[me][r] = code;
        self.row_count[me] += 1;
        self.row_bits[me] += bs;
        self.row_max[me] = self.row_max[me].max(bs);
        let row_max = self.row_max[me];
        self.count += 1;
        self.bits += bs;
        if !self.max_dirty {
            self.max_cache = self.max_cache.max(row_max);
        }
        true
    }

    fn set_broadcast_except(&mut self, sender: NodeId, msg: M, except: &[u32]) {
        let me = sender.index();
        if except.is_empty() {
            return MessagePlane::set(self, sender, Emission::Broadcast(msg));
        }
        let old_max = self.begin_edit(me);
        self.clear_row(me);
        self.ensure_dense(me);
        let bs = msg.bit_size();
        self.row_max[me] = bs;
        self.row_count[me] = self.n.saturating_sub(1);
        // The row was just cleared, so a cell is knocked iff its dev bit
        // is set — and the delivery stage hands us `except` in ascending
        // receiver order, which lets runs sharing a lane word fold into
        // one row-side read-modify-write (the per-receiver column bit is
        // scattered either way). Unsorted callers take the scalar path.
        if except.windows(2).all(|w| w[0] <= w[1]) {
            let words = self.words;
            let mut i = 0;
            while i < except.len() {
                let w = except[i] as usize / 64;
                let mut word = self.dev[me * words + w];
                while i < except.len() && except[i] as usize / 64 == w {
                    let r = except[i] as usize;
                    let bit = 1u64 << (r % 64);
                    if word & bit == 0 {
                        word |= bit;
                        self.col_dev[r * words + me / 64] |= 1u64 << (me % 64);
                        if r != me {
                            self.row_count[me] -= 1;
                        }
                    }
                    i += 1;
                }
                self.dev[me * words + w] = word;
            }
        } else {
            for &r in except {
                let r = r as usize;
                if !matches!(self.cell_state(me, r), CellState::Knocked) {
                    self.set_dev(me, r, true);
                    if r != me {
                        self.row_count[me] -= 1;
                    }
                }
            }
        }
        self.row_bits[me] = bs * self.row_count[me];
        self.set_base(me, Some(msg));
        self.end_edit(me, old_max);
    }

    fn merge_broadcast_except(
        &mut self,
        sender: NodeId,
        msg: M,
        except: &[u32],
        conflicts: &mut Vec<u32>,
    ) {
        let me = sender.index();
        debug_assert!(except.windows(2).all(|w| w[0] <= w[1]), "except not sorted");
        let old_max = self.begin_edit(me);
        assert!(
            self.base[me].is_none(),
            "merge_broadcast_except over an existing broadcast base"
        );
        self.ensure_dense(me);
        let bs = msg.bit_size();
        let mut k = 0usize;
        let mut inherited = 0usize;
        for r in 0..self.n {
            let mut is_knocked = false;
            while k < except.len() && except[k] as usize == r {
                is_knocked = true;
                k += 1;
            }
            match self.cell_state(me, r) {
                CellState::Code(_) => {
                    if !is_knocked {
                        conflicts.push(r as u32);
                    }
                }
                CellState::Knocked => {}
                CellState::Inherit => {
                    if is_knocked {
                        self.set_dev(me, r, true);
                    } else if r != me {
                        inherited += 1;
                    }
                }
            }
        }
        self.row_count[me] += inherited;
        self.row_bits[me] += inherited * bs;
        self.row_max[me] = self.row_max[me].max(bs);
        self.set_base(me, Some(msg));
        self.end_edit(me, old_max);
    }

    fn take_broadcast(&mut self, sender: NodeId) -> Option<M> {
        let me = sender.index();
        if self.dense[me] || self.base[me].is_none() {
            return None;
        }
        let old_max = self.begin_edit(me);
        let taken = self.base[me].take();
        self.clear_row(me);
        self.end_edit(me, old_max);
        taken
    }

    fn knock_out(&mut self, sender: NodeId, receiver: NodeId) {
        let me = sender.index();
        let r = receiver.index();
        if self.is_silent_row(me) {
            return; // silent row: nothing to knock out
        }
        let old_max = self.begin_edit(me);
        self.ensure_dense(me);
        let (counted, bits) = self.contribution(me, r);
        let removed_bits = match self.cell_state(me, r) {
            CellState::Inherit => self.base[me].as_ref().map(Message::bit_size),
            CellState::Knocked => None,
            CellState::Code(c) => Some(Self::bit_size_of_code(c)),
        };
        self.set_dev(me, r, true);
        self.set_has(me, r, false);
        if counted {
            self.row_count[me] -= 1;
            self.row_bits[me] -= bits;
        }
        if removed_bits == Some(self.row_max[me]) {
            // The removed message may have held the row maximum.
            self.row_max_dirty[me] = true;
        }
        self.end_edit(me, old_max);
    }

    fn broadcast_base(&self, sender: NodeId) -> Option<&M> {
        self.base[sender.index()].as_ref()
    }

    fn broadcast_of(&self, sender: NodeId) -> Option<&M> {
        let me = sender.index();
        if self.dense[me] {
            None
        } else {
            self.base[me].as_ref()
        }
    }

    fn resolve_value(&self, sender: NodeId, receiver: NodeId) -> Option<M> {
        let me = sender.index();
        let r = receiver.index();
        match self.cell_state(me, r) {
            CellState::Inherit => self.base[me].clone(),
            CellState::Knocked => None,
            CellState::Code(c) => Some(M::unpack(c)),
        }
    }

    fn has_message(&self, sender: NodeId, receiver: NodeId) -> bool {
        self.effective_code(sender.index(), receiver.index())
            .is_some()
    }

    fn is_broadcast(&self, sender: NodeId) -> bool {
        let me = sender.index();
        self.base[me].is_some() && !self.dense[me]
    }

    fn is_silent(&self, sender: NodeId) -> bool {
        self.is_silent_row(sender.index())
    }

    fn inbox(&self, receiver: NodeId) -> Inbox<'_, M> {
        Inbox::packed(self, M::unpack, receiver)
    }

    fn message_count(&self) -> usize {
        self.count
    }

    fn total_bits(&self) -> usize {
        self.bits
    }

    fn max_edge_bits(&self) -> usize {
        if !self.max_dirty {
            return self.max_cache;
        }
        (0..self.n)
            .map(|s| self.row_current_max(s))
            .max()
            .unwrap_or(0)
    }

    fn tally_offered(&self, scan: &mut crate::arrivals::ArrivalScan) {
        self.tally_offered_into(scan);
    }

    fn scan_arrivals(&self, scan: &mut crate::arrivals::ArrivalScan) {
        self.scan_arrivals_into(scan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A byte message: code = value.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }
    impl PackedMessage for Tm {
        fn pack(&self) -> Option<u32> {
            Some(self.0 as u32)
        }
        fn unpack(code: u32) -> Self {
            Tm(code as u8)
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn broadcast_counts_n_minus_one_and_tallies_word_parallel() {
        let mut p = PackedMailbox::<Tm>::new(70); // crosses a word boundary
        for s in 0..70 {
            MessagePlane::set(&mut p, id(s), Emission::Broadcast(Tm((s % 2) as u8)));
        }
        assert_eq!(MessagePlane::message_count(&p), 70 * 69);
        assert_eq!(MessagePlane::max_edge_bits(&p), 8);
        let inbox = MessagePlane::inbox(&p, id(3));
        assert_eq!(inbox.len(), 70);
        // Masked count: value-1 senders are the odd IDs.
        assert_eq!(inbox.packed_match_count(0xFF, 1, None), Some(35));
        assert_eq!(inbox.packed_match_count(0xFF, 1, Some(0..10)), Some(5));
        assert_eq!(inbox.packed_match_count(0, 0, None), Some(70));
    }

    #[test]
    fn knock_out_and_overrides_update_counts_and_tallies() {
        let mut p = PackedMailbox::<Tm>::new(5);
        MessagePlane::set(&mut p, id(0), Emission::Broadcast(Tm(1)));
        MessagePlane::knock_out(&mut p, id(0), id(2));
        assert_eq!(MessagePlane::message_count(&p), 3);
        assert!(!MessagePlane::has_message(&p, id(0), id(2)));
        MessagePlane::insert(&mut p, id(0), id(3), Tm(9));
        assert_eq!(MessagePlane::resolve_value(&p, id(0), id(3)), Some(Tm(9)));
        let inbox = MessagePlane::inbox(&p, id(3));
        assert_eq!(inbox.packed_match_count(0xFF, 9, None), Some(1));
        assert_eq!(inbox.packed_match_count(0xFF, 1, None), Some(0));
        let got: Vec<_> = inbox.iter().map(|(s, m)| (s.index(), m.0)).collect();
        assert_eq!(got, vec![(0, 9)]);
        // Receiver 2 was knocked out of the broadcast.
        assert!(MessagePlane::inbox(&p, id(2)).is_empty());
    }

    #[test]
    fn inbox_iterates_in_sender_order_across_words() {
        let mut p = PackedMailbox::<Tm>::new(130);
        for s in [0u32, 63, 64, 65, 128, 129] {
            MessagePlane::set(&mut p, id(s), Emission::Broadcast(Tm(s as u8)));
        }
        MessagePlane::insert(&mut p, id(70), id(1), Tm(70));
        let inbox = MessagePlane::inbox(&p, id(1));
        let got: Vec<_> = inbox.iter().map(|(s, _)| s.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 70, 128, 129]);
        assert_eq!(inbox.len(), 7);
        assert_eq!(inbox.from(id(70)), Some(&Tm(70)));
        assert_eq!(inbox.from(id(1)), None);
    }

    #[test]
    fn reset_pools_allocations_and_clears_state() {
        let mut p = PackedMailbox::<Tm>::new(4);
        MessagePlane::set(&mut p, id(1), Emission::Broadcast(Tm(1)));
        MessagePlane::knock_out(&mut p, id(1), id(2));
        MessagePlane::reset(&mut p, 4);
        assert_eq!(MessagePlane::message_count(&p), 0);
        assert!(MessagePlane::is_silent(&p, id(1)));
        assert_eq!(MessagePlane::inbox(&p, id(2)).len(), 0);
        // Resize to a different n re-arms the geometry.
        MessagePlane::reset(&mut p, 7);
        MessagePlane::set(&mut p, id(6), Emission::Broadcast(Tm(3)));
        assert_eq!(MessagePlane::message_count(&p), 6);
    }

    #[test]
    #[should_panic(expected = "does not fit the packed plane")]
    fn unpackable_message_panics() {
        #[derive(Debug, Clone, PartialEq)]
        struct Big(u64);
        impl Message for Big {
            fn bit_size(&self) -> usize {
                64
            }
        }
        impl PackedMessage for Big {
            fn pack(&self) -> Option<u32> {
                u32::try_from(self.0).ok()
            }
            fn unpack(code: u32) -> Self {
                Big(code as u64)
            }
        }
        let mut p = PackedMailbox::<Big>::new(2);
        MessagePlane::set(&mut p, id(0), Emission::Broadcast(Big(u64::MAX)));
    }

    #[test]
    fn take_broadcast_only_on_pure_rows() {
        let mut p = PackedMailbox::<Tm>::new(3);
        MessagePlane::set(&mut p, id(0), Emission::Broadcast(Tm(5)));
        assert_eq!(MessagePlane::take_broadcast(&mut p, id(0)), Some(Tm(5)));
        assert!(MessagePlane::is_silent(&p, id(0)));
        MessagePlane::set(&mut p, id(1), Emission::Broadcast(Tm(6)));
        MessagePlane::knock_out(&mut p, id(1), id(2));
        assert_eq!(MessagePlane::take_broadcast(&mut p, id(1)), None);
    }
}
