//! Post-run evaluation of the Byzantine agreement conditions.
//!
//! Definition 1 of the paper: every honest node terminates with an output
//! such that (Agreement) any two honest outputs are equal, and (Validity)
//! if every honest input is `b` then every honest output is `b`.

/// The verdict for one run, computed from honest inputs and outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Every honest node halted with an output.
    pub termination: bool,
    /// All honest outputs that exist are equal (vacuously true if none).
    pub agreement: bool,
    /// If all honest *inputs* were equal to some `b`: whether all honest
    /// outputs equal `b`. `None` when inputs were mixed (validity does not
    /// constrain that case).
    pub validity: Option<bool>,
    /// The common decision value, when agreement holds and at least one
    /// honest node decided.
    pub decision: Option<bool>,
}

impl Verdict {
    /// Evaluates the agreement conditions.
    ///
    /// `inputs` and `outputs` are indexed by node; `honest[i]` is false
    /// for nodes the adversary corrupted (their entries are ignored —
    /// the paper's conditions only constrain honest nodes).
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn evaluate(inputs: &[bool], outputs: &[Option<bool>], honest: &[bool]) -> Verdict {
        assert_eq!(inputs.len(), outputs.len());
        assert_eq!(inputs.len(), honest.len());

        let honest_outputs: Vec<Option<bool>> = outputs
            .iter()
            .zip(honest)
            .filter(|(_, h)| **h)
            .map(|(o, _)| *o)
            .collect();
        let honest_inputs: Vec<bool> = inputs
            .iter()
            .zip(honest)
            .filter(|(_, h)| **h)
            .map(|(i, _)| *i)
            .collect();

        let termination = honest_outputs.iter().all(|o| o.is_some());
        let decided: Vec<bool> = honest_outputs.iter().filter_map(|o| *o).collect();
        let agreement = decided.windows(2).all(|w| w[0] == w[1]);
        let decision = if agreement {
            decided.first().copied()
        } else {
            None
        };

        let uniform_input = honest_inputs
            .first()
            .map(|b| honest_inputs.iter().all(|x| x == b).then_some(*b));
        let validity = match uniform_input {
            Some(Some(b)) => Some(termination && agreement && decision == Some(b)),
            _ => None,
        };

        Verdict {
            termination,
            agreement,
            validity,
            decision,
        }
    }

    /// True when the run satisfies every applicable condition of
    /// Definition 1 (termination, agreement, and validity when inputs
    /// were uniform).
    pub fn is_correct(&self) -> bool {
        self.termination && self.agreement && self.validity.unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_agree_uniform_inputs() {
        let v = Verdict::evaluate(
            &[true, true, true],
            &[Some(true), Some(true), Some(true)],
            &[true, true, true],
        );
        assert!(v.termination && v.agreement);
        assert_eq!(v.validity, Some(true));
        assert_eq!(v.decision, Some(true));
        assert!(v.is_correct());
    }

    #[test]
    fn validity_violated_when_uniform_inputs_flipped() {
        let v = Verdict::evaluate(&[false, false], &[Some(true), Some(true)], &[true, true]);
        assert!(v.agreement);
        assert_eq!(v.validity, Some(false));
        assert!(!v.is_correct());
    }

    #[test]
    fn mixed_inputs_have_no_validity_constraint() {
        let v = Verdict::evaluate(&[false, true], &[Some(true), Some(true)], &[true, true]);
        assert_eq!(v.validity, None);
        assert!(v.is_correct());
    }

    #[test]
    fn disagreement_detected() {
        let v = Verdict::evaluate(
            &[true, true, true],
            &[Some(true), Some(false), Some(true)],
            &[true, true, true],
        );
        assert!(!v.agreement);
        assert_eq!(v.decision, None);
        assert!(!v.is_correct());
    }

    #[test]
    fn corrupted_nodes_are_ignored() {
        // Node 1 is corrupted and "outputs" garbage — must not matter.
        let v = Verdict::evaluate(
            &[true, false, true],
            &[Some(true), Some(false), Some(true)],
            &[true, false, true],
        );
        assert!(v.agreement);
        assert_eq!(v.validity, Some(true));
        assert!(v.is_correct());
    }

    #[test]
    fn non_termination_detected() {
        let v = Verdict::evaluate(&[true, true], &[Some(true), None], &[true, true]);
        assert!(!v.termination);
        assert!(v.agreement, "one output is vacuously consistent");
        assert_eq!(v.validity, Some(false), "validity requires termination");
        assert!(!v.is_correct());
    }

    #[test]
    fn no_honest_nodes_is_vacuous() {
        let v = Verdict::evaluate(&[true], &[None], &[false]);
        assert!(v.termination && v.agreement);
        assert_eq!(v.validity, None);
        assert!(v.is_correct());
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = Verdict::evaluate(&[true], &[None, None], &[true]);
    }
}
