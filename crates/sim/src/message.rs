//! Message trait and the emission type shared by honest nodes and the
//! adversary.

use crate::id::NodeId;
use std::fmt::Debug;

/// A protocol message.
///
/// Implementors must report an honest estimate of their encoded size in
/// bits via [`Message::bit_size`]; the engine uses it for CONGEST
/// accounting (the paper's model allows `O(log n)` bits per edge per
/// round — experiments assert the measured maximum stays within that
/// budget).
pub trait Message: Clone + Debug {
    /// Size of this message on the wire, in bits.
    ///
    /// The estimate should include every field a real encoding would carry
    /// (tags, counters, flags) but not the sender/receiver IDs, which the
    /// transport provides.
    fn bit_size(&self) -> usize;
}

/// What a node (or the adversary, on behalf of a corrupted node) sends in
/// one round.
///
/// Honest protocols in this workspace only ever broadcast or stay silent;
/// `PerRecipient` exists so that Byzantine nodes can *equivocate* — send
/// conflicting messages to different recipients in the same round — which
/// is essential to the adaptive-adversary experiments.
#[derive(Debug, Clone)]
pub enum Emission<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message to every node (including the sender itself:
    /// the paper's tallies, e.g. Algorithm 1 line 3, count the node's own
    /// value).
    Broadcast(M),
    /// Send a chosen message to each listed recipient; unlisted recipients
    /// receive nothing from this sender. Later entries for the same
    /// recipient override earlier ones.
    PerRecipient(Vec<(NodeId, M)>),
}

impl<M> Emission<M> {
    /// True if nothing is sent.
    pub fn is_silent(&self) -> bool {
        match self {
            Emission::Silent => true,
            Emission::Broadcast(_) => false,
            Emission::PerRecipient(v) => v.is_empty(),
        }
    }

    /// Number of point-to-point messages this emission generates in an
    /// `n`-node complete network (a broadcast costs `n - 1`: the self-copy
    /// is local and free, matching how the paper counts messages).
    pub fn message_count(&self, n: usize) -> usize {
        match self {
            Emission::Silent => 0,
            Emission::Broadcast(_) => n.saturating_sub(1),
            Emission::PerRecipient(v) => v.len(),
        }
    }
}

impl<M: Message> Emission<M> {
    /// Total bits this emission puts on the wire in an `n`-node network.
    pub fn total_bits(&self, n: usize) -> usize {
        match self {
            Emission::Silent => 0,
            Emission::Broadcast(m) => m.bit_size() * n.saturating_sub(1),
            Emission::PerRecipient(v) => v.iter().map(|(_, m)| m.bit_size()).sum(),
        }
    }

    /// The largest single message in this emission, in bits.
    pub fn max_bits(&self) -> usize {
        match self {
            Emission::Silent => 0,
            Emission::Broadcast(m) => m.bit_size(),
            Emission::PerRecipient(v) => v.iter().map(|(_, m)| m.bit_size()).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u32);
    impl Message for TestMsg {
        fn bit_size(&self) -> usize {
            32
        }
    }

    #[test]
    fn silent_counts_nothing() {
        let e: Emission<TestMsg> = Emission::Silent;
        assert!(e.is_silent());
        assert_eq!(e.message_count(10), 0);
        assert_eq!(e.total_bits(10), 0);
        assert_eq!(e.max_bits(), 0);
    }

    #[test]
    fn broadcast_counts_n_minus_one() {
        let e = Emission::Broadcast(TestMsg(7));
        assert!(!e.is_silent());
        assert_eq!(e.message_count(10), 9);
        assert_eq!(e.total_bits(10), 9 * 32);
        assert_eq!(e.max_bits(), 32);
    }

    #[test]
    fn per_recipient_counts_entries() {
        let e = Emission::PerRecipient(vec![
            (NodeId::new(1), TestMsg(0)),
            (NodeId::new(2), TestMsg(1)),
        ]);
        assert!(!e.is_silent());
        assert_eq!(e.message_count(10), 2);
        assert_eq!(e.total_bits(10), 64);
    }

    #[test]
    fn empty_per_recipient_is_silent() {
        let e: Emission<TestMsg> = Emission::PerRecipient(vec![]);
        assert!(e.is_silent());
        assert_eq!(e.message_count(5), 0);
    }

    #[test]
    fn broadcast_in_tiny_network() {
        let e = Emission::Broadcast(TestMsg(0));
        assert_eq!(e.message_count(1), 0);
        assert_eq!(e.total_bits(0), 0);
    }
}
