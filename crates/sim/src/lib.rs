//! # aba-sim — synchronous full-information round simulator
//!
//! This crate is the substrate on which every protocol in this workspace
//! runs. It implements, exactly, the network/adversary model of
//! Dufoulon & Pandurangan, *Improved Byzantine Agreement under an Adaptive
//! Adversary* (PODC 2025), Section 1.1:
//!
//! * a **complete network** of `n` nodes with unique, globally-known IDs;
//! * **lock-step synchronous** communication: every round, each node emits
//!   messages, then receives the messages addressed to it, with the sender
//!   identity attached by the transport;
//! * a **full-information adversary** that can read every honest node's
//!   entire state and (in the *rushing* model) all messages already emitted
//!   in the current round before deciding its own behaviour;
//! * **adaptive corruption**: at any round boundary the adversary may
//!   corrupt additional nodes, up to a fixed budget `t`; corruption is
//!   permanent, and a corrupted node's round message — including the one it
//!   just emitted this very round — is replaced by whatever the adversary
//!   chooses, possibly a different message per recipient (equivocation);
//! * **CONGEST accounting**: every message reports its encoded size in bits
//!   and the engine records the maximum number of bits crossing any edge in
//!   any round, so `O(log n)`-bandwidth compliance is measured, not assumed.
//!
//! The engine is deterministic: a run is a pure function of the
//! configuration and a 64-bit master seed (see [`rng`]).
//!
//! ## Quick example
//!
//! ```
//! use aba_sim::prelude::*;
//!
//! /// A toy one-round protocol: everyone broadcasts their input bit and
//! /// outputs the majority.
//! #[derive(Debug, Clone)]
//! struct MajorityNode { id: NodeId, n: usize, input: bool, out: Option<bool>, halted: bool }
//!
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! struct Bit(bool);
//! impl Message for Bit { fn bit_size(&self) -> usize { 1 } }
//!
//! impl Protocol for MajorityNode {
//!     type Msg = Bit;
//!     fn emit(&mut self, _round: Round, _rng: &mut dyn rand::RngCore) -> Emission<Bit> {
//!         Emission::Broadcast(Bit(self.input))
//!     }
//!     fn receive(&mut self, _round: Round, inbox: Inbox<'_, Bit>, _rng: &mut dyn rand::RngCore) {
//!         let ones = inbox.iter().filter(|(_, m)| m.0).count();
//!         self.out = Some(2 * ones >= self.n);
//!         self.halted = true;
//!     }
//!     fn output(&self) -> Option<bool> { self.out }
//!     fn halted(&self) -> bool { self.halted }
//! }
//!
//! let nodes: Vec<_> = (0..5)
//!     .map(|i| MajorityNode { id: NodeId::new(i), n: 5, input: i < 3, out: None, halted: false })
//!     .collect();
//! let cfg = SimConfig::new(5, 0);
//! let report = Simulation::new(cfg, nodes, aba_sim::adversary::Benign::new()).run();
//! assert!(report.all_halted);
//! assert!(report.outputs.iter().all(|o| *o == Some(true)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod arrivals;
pub mod delivery;
pub mod engine;
pub mod error;
pub mod id;
pub mod mailbox;
pub mod message;
pub mod metrics;
pub mod oracle;
pub mod packed;
pub mod plane;
pub mod probe;
pub mod protocol;
pub mod rng;
pub mod sparse;
pub mod trace;
pub mod verdict;

pub use adversary::{Adversary, AdversaryAction, CorruptionLedger, InfoModel, RoundView};
pub use arrivals::ArrivalScan;
pub use delivery::{Delivery, DeliveryStats, PassThrough};
pub use engine::{PackedSimulation, RunReport, SimConfig, Simulation, SparseSimulation};
pub use error::SimError;
pub use id::{NodeId, Round};
pub use mailbox::{Inbox, RoundMailbox};
pub use message::{Emission, Message};
pub use metrics::{RoundMetrics, RunMetrics, PER_ROUND_CAP};
pub use oracle::{NoOracle, Oracle, RoundCtx};
pub use packed::{PackedMailbox, PackedMessage};
pub use plane::MessagePlane;
pub use probe::{NoProbe, Probe, RoundPhase};
pub use protocol::Protocol;
pub use sparse::SparseMailbox;
pub use trace::{Event, Trace};
pub use verdict::Verdict;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, AdversaryAction, CorruptSend, CorruptionLedger, InfoModel, RoundView,
    };
    pub use crate::arrivals::ArrivalScan;
    pub use crate::delivery::{Delivery, DeliveryStats, PassThrough};
    pub use crate::engine::{PackedSimulation, RunReport, SimConfig, Simulation, SparseSimulation};
    pub use crate::error::SimError;
    pub use crate::id::{NodeId, Round};
    pub use crate::mailbox::{Inbox, RoundMailbox};
    pub use crate::message::{Emission, Message};
    pub use crate::metrics::{RoundMetrics, RunMetrics};
    pub use crate::oracle::{NoOracle, Oracle, RoundCtx};
    pub use crate::packed::{PackedMailbox, PackedMessage};
    pub use crate::plane::MessagePlane;
    pub use crate::probe::{NoProbe, Probe, RoundPhase};
    pub use crate::protocol::Protocol;
    pub use crate::sparse::SparseMailbox;
    pub use crate::trace::{Event, Trace};
    pub use crate::verdict::Verdict;
}
