//! Trace capture: an [`Oracle`] that records everything nondeterministic
//! a run consumed, compactly enough to re-drive the engine later.
//!
//! A run is a pure function of `(config, seed)` *given* the adversary's
//! actions and the network's delivery decisions — honest emissions
//! replay for free from the node RNG streams. So the recording stores,
//! per round:
//!
//! * the adversary's action (corruptions + corrupt sends), cloned before
//!   the engine consumes it;
//! * the **arrivals** in the dense mailbox's own representation — one
//!   shared broadcast base per sender plus that row's deviations
//!   (knock-outs and per-receiver overrides). A pure broadcast costs one
//!   message clone, never `n`;
//! * the round's [`DeliveryStats`], verbatim, so replayed delivery
//!   accounting is bit-identical by construction (the `delayed` counter
//!   in particular counts re-deferrals on busy links, which cannot be
//!   reconstructed from arrivals alone).
//!
//! [`crate::replay`] turns a recording back into an adversary and a
//! delivery stage.

use aba_sim::adversary::{AdversaryAction, CorruptSend};
use aba_sim::delivery::DeliveryStats;
use aba_sim::id::{NodeId, Round};
use aba_sim::mailbox::RoundMailbox;
use aba_sim::message::Message;
use aba_sim::oracle::{Oracle, RoundCtx};

/// One recorded adversary turn: the round it belongs to, the
/// corruptions, and the dictated corrupt emissions.
pub type ActionRecord<M> = (Round, Vec<NodeId>, Vec<(NodeId, CorruptSend<M>)>);

/// One sender's arrivals row: the shared broadcast base (if any) plus
/// the receivers that deviate from it.
#[derive(Debug, Clone)]
pub struct RowRecord<M> {
    /// The sender.
    pub sender: NodeId,
    /// The row's shared broadcast message, one clone for all receivers.
    pub base: Option<M>,
    /// Receivers knocked out of the base (only meaningful with a base).
    pub knocked: Vec<u32>,
    /// Receivers with a specific message overriding the base (or the
    /// only traffic, when there is no base).
    pub overrides: Vec<(NodeId, M)>,
}

/// Everything recorded about one round.
#[derive(Debug, Clone)]
pub struct RoundRecord<M> {
    /// The round.
    pub round: Round,
    /// Nodes the adversary corrupted this round.
    pub corruptions: Vec<NodeId>,
    /// The corrupted nodes' dictated emissions.
    pub sends: Vec<(NodeId, CorruptSend<M>)>,
    /// The arrivals, row by row (senders that delivered nothing are
    /// omitted).
    pub rows: Vec<RowRecord<M>>,
    /// The delivery stage's accounting for the round, verbatim.
    pub stats: DeliveryStats,
}

/// A completed recording: the full per-round script of one run.
#[derive(Debug, Clone)]
pub struct TraceRecording<M> {
    /// Per-round records, in round order.
    pub rounds: Vec<RoundRecord<M>>,
}

impl<M> Default for TraceRecording<M> {
    fn default() -> Self {
        TraceRecording { rounds: Vec::new() }
    }
}

impl<M> TraceRecording<M> {
    /// Rounds recorded.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// The recording oracle. Attach to a run via
/// [`aba_sim::Simulation::with_oracle`]; retrieve the recording with
/// [`TraceRecorder::into_recording`] after
/// [`aba_sim::Simulation::run_with_oracle`].
#[derive(Debug, Clone)]
pub struct TraceRecorder<M> {
    recording: TraceRecording<M>,
    pending: Option<ActionRecord<M>>,
}

impl<M> Default for TraceRecorder<M> {
    fn default() -> Self {
        TraceRecorder {
            recording: TraceRecording::default(),
            pending: None,
        }
    }
}

impl<M: Message> TraceRecorder<M> {
    /// A fresh recorder.
    pub fn new() -> Self {
        TraceRecorder {
            recording: TraceRecording { rounds: Vec::new() },
            pending: None,
        }
    }

    /// The finished recording.
    pub fn into_recording(self) -> TraceRecording<M> {
        self.recording
    }
}

/// Captures `mailbox` as row records (senders with no traffic omitted).
fn snapshot_rows<M: Message>(mailbox: &RoundMailbox<M>) -> Vec<RowRecord<M>> {
    let mut rows = Vec::new();
    for s in 0..mailbox.n() {
        let sender = NodeId::new(s as u32);
        let base = mailbox.broadcast_base(sender).cloned();
        let mut knocked = Vec::new();
        let mut overrides = Vec::new();
        for (receiver, deviation) in mailbox.deviations(sender) {
            match deviation {
                // A knock-out without a base delivers nothing: skip.
                None => {
                    if base.is_some() {
                        knocked.push(receiver.raw());
                    }
                }
                Some(m) => overrides.push((receiver, m.clone())),
            }
        }
        if base.is_some() || !overrides.is_empty() {
            rows.push(RowRecord {
                sender,
                base,
                knocked,
                overrides,
            });
        }
    }
    rows
}

impl<M: Message> Oracle<M> for TraceRecorder<M> {
    fn observe_action(&mut self, round: Round, action: &AdversaryAction<M>) {
        self.pending = Some((round, action.corruptions.clone(), action.sends.clone()));
    }

    fn observe_round(&mut self, ctx: &RoundCtx<'_, M>) {
        let (corruptions, sends) = match self.pending.take() {
            Some((r, c, s)) if r == ctx.round => (c, s),
            _ => (Vec::new(), Vec::new()),
        };
        self.recording.rounds.push(RoundRecord {
            round: ctx.round,
            corruptions,
            sends,
            rows: snapshot_rows(ctx.arrivals),
            stats: DeliveryStats {
                delivered: ctx.metrics.delivered,
                dropped: ctx.metrics.dropped,
                delayed: ctx.metrics.delayed,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::message::Emission;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn snapshot_captures_all_row_shapes() {
        let mut mb = RoundMailbox::new(4);
        mb.set(NodeId::new(0), Emission::Broadcast(Tm(1)));
        mb.knock_out(NodeId::new(0), NodeId::new(2));
        mb.insert(NodeId::new(0), NodeId::new(3), Tm(9));
        mb.set(
            NodeId::new(1),
            Emission::PerRecipient(vec![(NodeId::new(2), Tm(5))]),
        );
        // Sender 2 silent, sender 3 silent.
        let rows = snapshot_rows(&mb);
        assert_eq!(rows.len(), 2);
        let r0 = &rows[0];
        assert_eq!(r0.base, Some(Tm(1)));
        assert_eq!(r0.knocked, vec![2]);
        assert_eq!(r0.overrides, vec![(NodeId::new(3), Tm(9))]);
        let r1 = &rows[1];
        assert_eq!(r1.base, None);
        assert!(r1.knocked.is_empty());
        assert_eq!(r1.overrides, vec![(NodeId::new(2), Tm(5))]);
    }
}
