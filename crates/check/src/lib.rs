//! # aba-check — online invariant oracles, trace replay, and shrinking
//!
//! The paper's guarantees are lemma-shaped: agreement at decision,
//! validity under uniform inputs, early termination when the adaptive
//! adversary spends only `q < t` corruptions, the CONGEST
//! one-message-per-edge bit bound, and monotone corruption-budget
//! accounting. Before this crate they were asserted *post hoc* in a
//! handful of integration tests; a sweep cell that silently violated a
//! lemma mid-run still reported plausible aggregate numbers.
//!
//! This crate plugs machine checking into every run via the `aba-sim`
//! [`Oracle`](aba_sim::oracle::Oracle) seam:
//!
//! * **Lemma oracles** ([`oracles`]): one online checker per lemma, plus
//!   the [`LemmaSuite`] aggregate the harness attaches. Checkers observe
//!   shared engine state each round and record [`Violation`]s with the
//!   round they first became observable.
//! * **Trace capture** ([`record`]): [`TraceRecorder`] is itself an
//!   oracle. It records, per round, the adversary's action and the
//!   arrivals in the dense mailbox's own broadcast-base + deviation
//!   representation (one clone per broadcast, not `n`), plus the
//!   delivery stats.
//! * **Replay** ([`replay`]): [`ReplayAdversary`] and [`ReplayDelivery`]
//!   re-drive the engine from a recording with no network model and no
//!   adversary strategy attached; a faithful trace reproduces the live
//!   run bit for bit under every network model (pinned by the
//!   `trace_replay` differential tests).
//! * **Blame** ([`blame`]): given a run whose honest deciders disagree
//!   and a causal-influence relation (supplied by `aba-obs`'s
//!   provenance probe), a deterministic greedy cover of the minority
//!   deciders by corrupted senders — the repro artifact's "who to
//!   remove first" slice.
//! * **Shrinking** ([`shrink`]): a generic greedy minimizer the harness
//!   uses to cut a failing scenario down along `n`, the trial seed, and
//!   the round prefix before writing a repro artifact.
//!
//! The crate depends only on `aba-sim`; scenario-level wiring
//! (`ScenarioBuilder::check`, sweep columns, repro artifacts) lives in
//! `aba-harness` and `aba-sweep`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blame;
pub mod oracles;
pub mod record;
pub mod replay;
pub mod shrink;
pub mod violation;

pub use blame::{blame_disagreement, BlameReport};
pub use oracles::{
    AgreementAtDecision, CongestEdgeBound, CorruptionBudgetMonotonicity, EarlyTerminationBudget,
    LemmaSuite, OracleReport, Validity,
};
pub use record::{RoundRecord, RowRecord, TraceRecorder, TraceRecording};
pub use replay::{ReplayAdversary, ReplayDelivery};
pub use shrink::{shrink_greedy, ShrinkStats};
pub use violation::Violation;
