//! Greedy failure shrinking.
//!
//! When an oracle fires, the raw failing scenario is rarely the best
//! artifact: the same violation usually reproduces at a fraction of the
//! network size, at a small seed, and within a short round prefix.
//! [`shrink_greedy`] is the generic engine: the caller supplies a
//! candidate generator (ordered most-aggressive-first) and a predicate
//! that re-runs the checkers; the shrinker walks downhill, accepting
//! the first still-failing candidate each step, until a fixed point or
//! the evaluation budget.
//!
//! Determinism: candidates and the predicate must be pure functions of
//! the candidate (re-running a seeded scenario is), so the shrunken
//! result is identical across runs, processes, and worker counts — a
//! requirement for byte-identical sweep repro artifacts.

/// Accounting for one shrink session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidates whose predicate was evaluated.
    pub evaluated: usize,
    /// Candidates accepted (steps actually taken downhill).
    pub accepted: usize,
}

/// Greedily minimizes `initial` while `still_fails` holds.
///
/// Each step, `candidates` proposes smaller variants of the current
/// candidate (in preference order); the first one that still fails is
/// adopted and the loop restarts from it. The process stops at a fixed
/// point (no candidate fails) or after `max_evals` predicate
/// evaluations. `initial` is assumed failing and is returned unchanged
/// when nothing smaller fails.
pub fn shrink_greedy<C: Clone>(
    initial: C,
    mut candidates: impl FnMut(&C) -> Vec<C>,
    mut still_fails: impl FnMut(&C) -> bool,
    max_evals: usize,
) -> (C, ShrinkStats) {
    let mut current = initial;
    let mut stats = ShrinkStats::default();
    'outer: loop {
        for candidate in candidates(&current) {
            if stats.evaluated >= max_evals {
                break 'outer;
            }
            stats.evaluated += 1;
            if still_fails(&candidate) {
                current = candidate;
                stats.accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_smallest_failing_value() {
        // "Fails" iff >= 17; candidates halve and decrement.
        let (min, stats) = shrink_greedy(
            1000u64,
            |&c| vec![c / 2, c.saturating_sub(1)],
            |&c| c >= 17,
            1000,
        );
        assert_eq!(min, 17);
        assert!(stats.accepted > 0);
        assert!(stats.evaluated >= stats.accepted);
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let (min, stats) =
            shrink_greedy(1_000_000u64, |&c| vec![c.saturating_sub(1)], |&c| c > 0, 10);
        assert_eq!(stats.evaluated, 10);
        assert_eq!(min, 1_000_000 - 10);
    }

    #[test]
    fn fixed_point_returns_initial() {
        let (min, stats) = shrink_greedy(5u64, |&c| vec![c - 1], |&c| c == 5, 100);
        assert_eq!(min, 5);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.evaluated, 1);
    }
}
