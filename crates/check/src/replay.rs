//! Replay: re-driving the engine from a [`TraceRecording`].
//!
//! The replayed run keeps the original config and seed (so honest nodes
//! re-derive their RNG streams and emissions), but swaps the adversary
//! strategy for [`ReplayAdversary`] (which feeds the recorded actions
//! back verbatim) and the network delivery stage for [`ReplayDelivery`]
//! (which discards the wire and reconstructs the recorded arrivals).
//! A faithful recording therefore reproduces the live run bit for bit —
//! outputs, rounds, wire metrics, *and* the delivered/dropped/delayed
//! counters, which come back verbatim from the recorded per-round
//! stats — under every network model. The `trace_replay` integration
//! tests pin this differentially.

use crate::record::{ActionRecord, RoundRecord, RowRecord, TraceRecording};
use aba_sim::adversary::{Adversary, AdversaryAction, CorruptionLedger, RoundView};
use aba_sim::delivery::{Delivery, DeliveryStats};
use aba_sim::id::Round;
use aba_sim::mailbox::RoundMailbox;
use aba_sim::message::Message;
use aba_sim::protocol::Protocol;
use rand::RngCore;
use std::collections::VecDeque;

impl<M: Message> TraceRecording<M> {
    /// Splits the recording into the adversary and delivery halves of a
    /// replay. `name` is reported as the replay adversary's strategy
    /// name — pass the live adversary's, so replayed trial results are
    /// field-for-field identical to the live ones.
    pub fn into_replay(self, name: &'static str) -> (ReplayAdversary<M>, ReplayDelivery<M>) {
        let mut actions = VecDeque::with_capacity(self.rounds.len());
        let mut deliveries = VecDeque::with_capacity(self.rounds.len());
        for RoundRecord {
            round,
            corruptions,
            sends,
            rows,
            stats,
        } in self.rounds
        {
            if !corruptions.is_empty() || !sends.is_empty() {
                actions.push_back((round, corruptions, sends));
            }
            deliveries.push_back((round, rows, stats));
        }
        (
            ReplayAdversary {
                script: actions,
                name,
            },
            ReplayDelivery { script: deliveries },
        )
    }
}

/// An adversary that replays recorded actions, round for round, and
/// ignores everything it sees.
#[derive(Debug, Clone)]
pub struct ReplayAdversary<M> {
    script: VecDeque<ActionRecord<M>>,
    name: &'static str,
}

impl<M: Message, P: Protocol<Msg = M>> Adversary<P> for ReplayAdversary<M> {
    fn act(&mut self, view: &RoundView<'_, P>, _rng: &mut dyn RngCore) -> AdversaryAction<M> {
        match self.script.front() {
            Some((round, _, _)) if *round == view.round => {
                let (_, corruptions, sends) = self.script.pop_front().expect("front exists");
                AdversaryAction { corruptions, sends }
            }
            _ => AdversaryAction::pass(),
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// A delivery stage that discards the wire and reconstructs the recorded
/// arrivals — the recorded network decisions, replayed exactly.
#[derive(Debug, Clone)]
pub struct ReplayDelivery<M> {
    script: VecDeque<(Round, Vec<RowRecord<M>>, DeliveryStats)>,
}

impl<M: Message> Delivery<M> for ReplayDelivery<M> {
    fn deliver(
        &mut self,
        round: Round,
        mut wire: RoundMailbox<M>,
        _ledger: &CorruptionLedger,
    ) -> (RoundMailbox<M>, DeliveryStats) {
        let n = wire.n();
        wire.reset(n);
        let Some((front, _, _)) = self.script.front() else {
            return (wire, DeliveryStats::default());
        };
        if *front != round {
            return (wire, DeliveryStats::default());
        }
        let (_, rows, stats) = self.script.pop_front().expect("front exists");
        for RowRecord {
            sender,
            base,
            knocked,
            overrides,
        } in rows
        {
            if let Some(base) = base {
                // aba-lint: allow(seam-bypass) — ReplayDelivery IS a delivery adapter: it reconstructs recorded wire state verbatim
                wire.set_broadcast_except(sender, base, &knocked);
            }
            for (receiver, m) in overrides {
                wire.insert(sender, receiver, m);
            }
        }
        (wire, stats)
    }

    fn in_flight(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecorder;
    use aba_sim::adversary::Benign;
    use aba_sim::mailbox::Inbox;
    use aba_sim::message::Emission;
    use aba_sim::prelude::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Val(u8);
    impl Message for Val {
        fn bit_size(&self) -> usize {
            8
        }
    }

    /// Broadcasts its input for `rounds` rounds, then outputs the
    /// majority of the final round.
    #[derive(Debug, Clone)]
    struct Maj {
        input: bool,
        n: usize,
        rounds: u64,
        out: Option<bool>,
        halted: bool,
    }
    impl Protocol for Maj {
        type Msg = Val;
        fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Val> {
            Emission::Broadcast(Val(self.input as u8))
        }
        fn receive(&mut self, r: Round, inbox: Inbox<'_, Val>, _rng: &mut dyn RngCore) {
            if r.index() + 1 >= self.rounds {
                let ones = inbox.iter().filter(|(_, m)| m.0 == 1).count();
                self.out = Some(2 * ones >= self.n);
                self.halted = true;
            }
        }
        fn output(&self) -> Option<bool> {
            self.out
        }
        fn halted(&self) -> bool {
            self.halted
        }
    }

    fn nodes(n: usize, ones: usize, rounds: u64) -> Vec<Maj> {
        (0..n)
            .map(|i| Maj {
                input: i < ones,
                n,
                rounds,
                out: None,
                halted: false,
            })
            .collect()
    }

    /// Drops every message from even senders — an aggressive non-trivial
    /// delivery stage for the round-trip test.
    struct DropEven;
    impl<M: Message> Delivery<M> for DropEven {
        fn deliver(
            &mut self,
            _round: Round,
            mut wire: RoundMailbox<M>,
            _ledger: &CorruptionLedger,
        ) -> (RoundMailbox<M>, DeliveryStats) {
            let mut dropped = 0;
            for s in (0..wire.n()).step_by(2) {
                let id = NodeId::new(s as u32);
                if !wire.is_silent(id) {
                    dropped += wire.n() - 1;
                    wire.silence(id);
                }
            }
            let delivered = wire.message_count();
            (
                wire,
                DeliveryStats {
                    delivered,
                    dropped,
                    delayed: 0,
                },
            )
        }
        fn name(&self) -> &'static str {
            "drop-even"
        }
    }

    #[test]
    fn replay_reproduces_a_run_with_a_lossy_delivery_stage() {
        let cfg = SimConfig::new(5, 0).with_seed(7);
        let (live, recorder) = Simulation::with_oracle(
            cfg.clone(),
            nodes(5, 3, 3),
            Benign,
            DropEven,
            TraceRecorder::new(),
        )
        .run_with_oracle();
        let (adv, delivery) = recorder.into_recording().into_replay("benign");
        let replayed = Simulation::with_network(cfg, nodes(5, 3, 3), adv, delivery).run();
        assert_eq!(live.outputs, replayed.outputs);
        assert_eq!(live.rounds, replayed.rounds);
        assert_eq!(live.metrics, replayed.metrics);
        assert_eq!(live.halt_rounds, replayed.halt_rounds);
    }

    #[test]
    fn replay_past_the_recording_delivers_nothing() {
        let recording: TraceRecording<Val> = TraceRecording::default();
        let (_, mut delivery) = recording.into_replay("benign");
        let mut wire = RoundMailbox::new(3);
        wire.set(NodeId::new(0), Emission::Broadcast(Val(1)));
        let ledger = CorruptionLedger::new(3, 0);
        let (out, stats) = delivery.deliver(Round::ZERO, wire, &ledger);
        assert_eq!(out.message_count(), 0);
        assert_eq!(stats, DeliveryStats::default());
    }
}
