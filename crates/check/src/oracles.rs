//! Online checkers for the paper's lemmas.
//!
//! Each checker implements [`Oracle`] over any message type (none of
//! them inspects message *contents* — they read the ledger, halt flags,
//! decided outputs, and round metrics the engine already maintains), so
//! one monomorphization per protocol suffices and a checker costs one
//! `O(n)` scan per round at most.
//!
//! Semantics are **online and strict**: a checker fires in the first
//! round the violation becomes observable, quantifying over nodes that
//! are honest *at that moment*. This is at least as strong as the
//! post-hoc [`aba_sim::Verdict`] (which quantifies over nodes honest at
//! the end): a node that decides wrongly and is corrupted afterwards
//! still fired the oracle — the protocol made an honest node err, even
//! if the adversary later hides the evidence.

use crate::violation::{Violation, ViolationLog};
use aba_sim::engine::RunReport;
use aba_sim::id::NodeId;
use aba_sim::message::Message;
use aba_sim::oracle::{Oracle, RoundCtx};
use aba_sim::plane::MessagePlane;

/// Lemma: any two honest nodes that decide, decide the same value
/// (Definition 1, Agreement — checked *at decision time*, not post hoc).
#[derive(Debug, Clone, Default)]
pub struct AgreementAtDecision {
    /// First honest decision seen: `(node, round, value)`.
    first: Option<(NodeId, u64, bool)>,
    /// Nodes already processed (halt observed), lazily sized to `n`.
    seen: Vec<bool>,
    log: ViolationLog,
}

/// Lemma: under uniform honest inputs `b`, every honest decision is `b`
/// (Definition 1, Validity).
#[derive(Debug, Clone)]
pub struct Validity {
    expected: bool,
    seen: Vec<bool>,
    log: ViolationLog,
}

/// Lemma: when the adversary is capped at `q < t` actual corruptions,
/// the run terminates within a `q`-dependent round bound (Theorem 2's
/// early-termination clause). The bound itself is supplied by the
/// caller (the harness derives it from `aba-analysis`'s
/// `early_termination_bound` with the generous constants the
/// integration tests use); the checker also pins the budget accounting:
/// the adversary must never spend more than its cap.
#[derive(Debug, Clone)]
pub struct EarlyTerminationBudget {
    /// The adversary's actual-corruption cap `q`.
    q: usize,
    /// Maximum rounds the run may take under that cap.
    round_bound: u64,
    fired_rounds: bool,
    fired_cap: bool,
    log: ViolationLog,
}

/// Lemma: no message exceeds the CONGEST per-edge-per-round bit budget
/// (`O(log n)` bits; the engine guarantees one message per ordered pair
/// per round, so the per-edge maximum *is* the largest message).
#[derive(Debug, Clone)]
pub struct CongestEdgeBound {
    budget_bits: usize,
    log: ViolationLog,
}

/// Engine-accounting invariant: the corruption counter is monotone,
/// never exceeds the budget `t`, and the per-round delta in the metrics
/// matches the ledger.
#[derive(Debug, Clone, Default)]
pub struct CorruptionBudgetMonotonicity {
    prev_used: usize,
    log: ViolationLog,
}

impl AgreementAtDecision {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    fn scan<M: Message, L: MessagePlane<M>>(&mut self, ctx: &RoundCtx<'_, M, L>) {
        if self.seen.len() != ctx.n {
            self.seen = vec![false; ctx.n];
        }
        for i in 0..ctx.n {
            // No corruption filter: `outputs[i]` is only ever recorded
            // at an *honest* halt (the engine never steps corrupted
            // nodes), so a node that decided and was corrupted later —
            // even in the very same round — still counts as the honest
            // decision it was.
            if !ctx.halted[i] || self.seen[i] {
                continue;
            }
            self.seen[i] = true;
            let Some(value) = ctx.outputs[i] else {
                continue;
            };
            match self.first {
                None => self.first = Some((NodeId::new(i as u32), ctx.round.index(), value)),
                Some((peer, peer_round, prior)) if prior != value => {
                    self.log
                        .fire("agreement-at-decision", ctx.round.index(), || {
                            format!(
                                "v{i} decided {value} but {peer} decided {prior} at r{peer_round}"
                            )
                        });
                }
                Some(_) => {}
            }
        }
    }
}

impl<M: Message, L: MessagePlane<M>> Oracle<M, L> for AgreementAtDecision {
    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        self.scan(ctx);
    }
}

impl Validity {
    /// A checker armed with the uniform honest input `b`.
    pub fn new(expected: bool) -> Self {
        Validity {
            expected,
            seen: Vec::new(),
            log: ViolationLog::default(),
        }
    }
}

impl<M: Message, L: MessagePlane<M>> Oracle<M, L> for Validity {
    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        if self.seen.len() != ctx.n {
            self.seen = vec![false; ctx.n];
        }
        for i in 0..ctx.n {
            // No corruption filter: `outputs[i]` is only ever recorded
            // at an *honest* halt (the engine never steps corrupted
            // nodes), so a node that decided and was corrupted later —
            // even in the very same round — still counts as the honest
            // decision it was.
            if !ctx.halted[i] || self.seen[i] {
                continue;
            }
            self.seen[i] = true;
            if let Some(value) = ctx.outputs[i] {
                if value != self.expected {
                    let expected = self.expected;
                    self.log.fire("validity", ctx.round.index(), || {
                        format!("v{i} decided {value} under uniform input {expected}")
                    });
                }
            }
        }
    }
}

impl EarlyTerminationBudget {
    /// A checker armed with the adversary's cap `q` and the maximum
    /// rounds the run may take under it.
    pub fn new(q: usize, round_bound: u64) -> Self {
        EarlyTerminationBudget {
            q,
            round_bound,
            fired_rounds: false,
            fired_cap: false,
            log: ViolationLog::default(),
        }
    }
}

impl<M: Message, L: MessagePlane<M>> Oracle<M, L> for EarlyTerminationBudget {
    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        // Round indices are zero-based: executing round `round_bound`
        // means the run has taken more than `round_bound` rounds.
        if !self.fired_rounds && ctx.round.index() >= self.round_bound {
            self.fired_rounds = true;
            let bound = self.round_bound;
            let q = self.q;
            self.log.fire("early-termination", ctx.round.index(), || {
                format!("run exceeded the {bound}-round bound for corruption cap q={q}")
            });
        }
        if !self.fired_cap && ctx.ledger.used() > self.q {
            self.fired_cap = true;
            let q = self.q;
            let used = ctx.ledger.used();
            self.log.fire("early-termination", ctx.round.index(), || {
                format!("adversary spent {used} corruptions, above its cap q={q}")
            });
        }
    }

    fn observe_end(&mut self, report: &RunReport) {
        // Only a run that was actually *allowed* to reach the bound can
        // witness non-termination: a caller-configured round cap below
        // the bound truncates the run without saying anything about the
        // lemma (covers the `max_rounds == round_bound` edge, which the
        // per-round check above cannot see).
        if !self.fired_rounds && !report.all_halted && report.rounds >= self.round_bound {
            self.fired_rounds = true;
            let q = self.q;
            self.log.fire("early-termination", report.rounds, || {
                format!("run hit the round cap without terminating despite corruption cap q={q}")
            });
        }
    }
}

impl CongestEdgeBound {
    /// A checker armed with the per-edge-per-round bit budget.
    pub fn new(budget_bits: usize) -> Self {
        CongestEdgeBound {
            budget_bits,
            log: ViolationLog::default(),
        }
    }
}

impl<M: Message, L: MessagePlane<M>> Oracle<M, L> for CongestEdgeBound {
    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        let max = ctx.metrics.max_edge_bits;
        if max > self.budget_bits {
            let budget = self.budget_bits;
            self.log.fire("congest-edge-bound", ctx.round.index(), || {
                format!("{max} bits crossed an edge, budget is {budget}")
            });
        }
    }
}

impl CorruptionBudgetMonotonicity {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<M: Message, L: MessagePlane<M>> Oracle<M, L> for CorruptionBudgetMonotonicity {
    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        let used = ctx.ledger.used();
        let round = ctx.round.index();
        if used > ctx.ledger.budget() {
            let budget = ctx.ledger.budget();
            self.log.fire("corruption-budget", round, || {
                format!("{used} corruptions exceed the budget t={budget}")
            });
        }
        if used < self.prev_used {
            let prev = self.prev_used;
            self.log.fire("corruption-budget", round, || {
                format!("corruption counter went backwards: {prev} -> {used}")
            });
        } else if ctx.metrics.corruptions != used - self.prev_used {
            let delta = ctx.metrics.corruptions;
            let expected = used - self.prev_used;
            self.log.fire("corruption-budget", round, || {
                format!("round reported {delta} corruptions, ledger moved by {expected}")
            });
        }
        self.prev_used = used;
    }
}

/// Everything the oracles concluded about one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Total firings across every armed oracle (each list is capped, the
    /// count is not).
    pub total: usize,
    /// Retained violation details, sorted by round (stable across runs
    /// and worker counts).
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// The earliest retained violation, if any fired.
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Whether no oracle fired.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }
}

/// The aggregate the harness attaches to a checked run: every lemma
/// checker, individually armed or dormant.
#[derive(Debug, Clone, Default)]
pub struct LemmaSuite {
    agreement: Option<AgreementAtDecision>,
    validity: Option<Validity>,
    early: Option<EarlyTerminationBudget>,
    congest: Option<CongestEdgeBound>,
    budget: Option<CorruptionBudgetMonotonicity>,
}

impl LemmaSuite {
    /// A suite with every checker dormant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the agreement-at-decision checker.
    #[must_use]
    pub fn agreement(mut self) -> Self {
        self.agreement = Some(AgreementAtDecision::new());
        self
    }

    /// Arms the validity checker for uniform honest input `b`.
    #[must_use]
    pub fn validity(mut self, expected: bool) -> Self {
        self.validity = Some(Validity::new(expected));
        self
    }

    /// Arms the early-termination checker for corruption cap `q` and the
    /// given round bound.
    #[must_use]
    pub fn early_termination(mut self, q: usize, round_bound: u64) -> Self {
        self.early = Some(EarlyTerminationBudget::new(q, round_bound));
        self
    }

    /// Arms the CONGEST edge-bit checker.
    #[must_use]
    pub fn congest(mut self, budget_bits: usize) -> Self {
        self.congest = Some(CongestEdgeBound::new(budget_bits));
        self
    }

    /// Arms the corruption-budget accounting checker.
    #[must_use]
    pub fn budget_monotonicity(mut self) -> Self {
        self.budget = Some(CorruptionBudgetMonotonicity::new());
        self
    }

    fn logs(&self) -> impl Iterator<Item = &ViolationLog> {
        [
            self.agreement.as_ref().map(|c| &c.log),
            self.validity.as_ref().map(|c| &c.log),
            self.early.as_ref().map(|c| &c.log),
            self.congest.as_ref().map(|c| &c.log),
            self.budget.as_ref().map(|c| &c.log),
        ]
        .into_iter()
        .flatten()
    }

    /// Folds every checker's log into one [`OracleReport`].
    pub fn report(&self) -> OracleReport {
        let total = self.logs().map(ViolationLog::total).sum();
        let mut violations: Vec<Violation> =
            self.logs().flat_map(|l| l.kept().iter().cloned()).collect();
        violations.sort_by_key(|v| v.round);
        OracleReport { total, violations }
    }
}

impl<M: Message, L: MessagePlane<M>> Oracle<M, L> for LemmaSuite {
    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        if let Some(c) = &mut self.agreement {
            c.observe_round(ctx);
        }
        if let Some(c) = &mut self.validity {
            Oracle::<M, L>::observe_round(c, ctx);
        }
        if let Some(c) = &mut self.early {
            Oracle::<M, L>::observe_round(c, ctx);
        }
        if let Some(c) = &mut self.congest {
            Oracle::<M, L>::observe_round(c, ctx);
        }
        if let Some(c) = &mut self.budget {
            Oracle::<M, L>::observe_round(c, ctx);
        }
    }

    fn observe_end(&mut self, report: &RunReport) {
        if let Some(c) = &mut self.early {
            Oracle::<M, L>::observe_end(c, report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::adversary::{Adversary, AdversaryAction, Benign, CorruptSend, RoundView};
    use aba_sim::mailbox::Inbox;
    use aba_sim::message::Emission;
    use aba_sim::prelude::*;
    use rand::RngCore;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Bit(bool);
    impl Message for Bit {
        fn bit_size(&self) -> usize {
            1
        }
    }

    /// Decides its own input after one round — a protocol that violates
    /// agreement under split inputs by construction.
    #[derive(Debug, Clone)]
    struct Stubborn {
        input: bool,
        done: bool,
    }
    impl Protocol for Stubborn {
        type Msg = Bit;
        fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Bit> {
            Emission::Broadcast(Bit(self.input))
        }
        fn receive(&mut self, _r: Round, _inbox: Inbox<'_, Bit>, _rng: &mut dyn RngCore) {
            self.done = true;
        }
        fn output(&self) -> Option<bool> {
            self.done.then_some(self.input)
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    fn run_suite(inputs: &[bool], suite: LemmaSuite) -> (RunReport, LemmaSuite) {
        let nodes: Vec<Stubborn> = inputs
            .iter()
            .map(|b| Stubborn {
                input: *b,
                done: false,
            })
            .collect();
        let cfg = SimConfig::new(inputs.len(), 0);
        Simulation::with_oracle(cfg, nodes, Benign, PassThrough, suite).run_with_oracle()
    }

    #[test]
    fn agreement_oracle_fires_on_split_decisions() {
        let (_, suite) = run_suite(&[true, false, true], LemmaSuite::new().agreement());
        let report = suite.report();
        assert_eq!(report.total, 1, "one conflicting decision pair");
        assert_eq!(report.first().unwrap().oracle, "agreement-at-decision");
        assert_eq!(report.first().unwrap().round, 0);
    }

    #[test]
    fn agreement_oracle_clean_on_uniform_decisions() {
        let (_, suite) = run_suite(&[true, true, true], LemmaSuite::new().agreement());
        assert!(suite.report().is_clean());
    }

    #[test]
    fn validity_oracle_fires_on_flipped_output() {
        // All nodes "decide" their input; arming validity with the
        // opposite expectation must flag every decision.
        let (_, suite) = run_suite(&[true, true], LemmaSuite::new().validity(false));
        let report = suite.report();
        assert_eq!(report.total, 2);
        assert_eq!(report.first().unwrap().oracle, "validity");
    }

    #[test]
    fn congest_oracle_fires_only_above_budget() {
        let (_, suite) = run_suite(&[true, true], LemmaSuite::new().congest(1));
        assert!(
            suite.report().is_clean(),
            "1-bit messages fit a 1-bit budget"
        );
        let (_, suite) = run_suite(&[true, true], LemmaSuite::new().congest(0));
        assert_eq!(suite.report().total, 1);
    }

    #[test]
    fn early_termination_round_bound() {
        // The run takes exactly 1 round; a 1-round bound is respected, a
        // 0-round bound is not.
        let (_, suite) = run_suite(&[true, true], LemmaSuite::new().early_termination(0, 1));
        assert!(suite.report().is_clean());
        let (_, suite) = run_suite(&[true, true], LemmaSuite::new().early_termination(0, 0));
        let report = suite.report();
        assert_eq!(report.total, 1);
        assert!(report.first().unwrap().detail.contains("0-round bound"));
    }

    /// Corrupts node 0 at round 0 and silences it.
    struct CorruptZero;
    impl Adversary<Stubborn> for CorruptZero {
        fn act(
            &mut self,
            view: &RoundView<'_, Stubborn>,
            _rng: &mut dyn RngCore,
        ) -> AdversaryAction<Bit> {
            if view.round == Round::ZERO {
                AdversaryAction {
                    corruptions: vec![NodeId::new(0)],
                    sends: vec![(NodeId::new(0), CorruptSend::Broadcast(Bit(false)))],
                }
            } else {
                AdversaryAction::pass()
            }
        }
    }

    #[test]
    fn corrupted_nodes_do_not_trip_agreement_and_cap_overrun_fires() {
        // Node 0 holds the deviant input but is corrupted before any
        // honest node decides: agreement over honest deciders holds.
        // The early-termination checker armed with cap q=0 must flag the
        // single corruption as a cap overrun.
        let nodes = vec![
            Stubborn {
                input: false,
                done: false,
            },
            Stubborn {
                input: true,
                done: false,
            },
            Stubborn {
                input: true,
                done: false,
            },
        ];
        let suite = LemmaSuite::new()
            .agreement()
            .early_termination(0, 50)
            .budget_monotonicity();
        let cfg = SimConfig::new(3, 1);
        let (report, suite) =
            Simulation::with_oracle(cfg, nodes, CorruptZero, PassThrough, suite).run_with_oracle();
        assert_eq!(report.corruptions_used, 1);
        let oracle_report = suite.report();
        assert_eq!(oracle_report.total, 1, "{:?}", oracle_report.violations);
        assert!(oracle_report
            .first()
            .unwrap()
            .detail
            .contains("above its cap"));
    }

    #[test]
    fn budget_monotonicity_clean_on_benign_run() {
        let (_, suite) = run_suite(&[true, true], LemmaSuite::new().budget_monotonicity());
        assert!(suite.report().is_clean());
    }
}
