//! The violation record shared by every oracle.

use std::fmt;

/// One observed lemma violation.
///
/// `round` is the round at which the violation first became observable
/// online — for a fixed scenario and seed it is stable across runs,
/// processes, and worker counts, which is what makes golden tests and
/// byte-identical sweep artifacts possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the oracle that fired (e.g. `"agreement-at-decision"`).
    pub oracle: &'static str,
    /// Round at which the violation was detected.
    pub round: u64,
    /// Human-readable specifics (nodes, values, measured vs bound).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ r{}] {}", self.oracle, self.round, self.detail)
    }
}

/// A bounded violation log: counts every firing, keeps the details of
/// the first [`ViolationLog::CAP`] — a run that violates an invariant
/// every round for thousands of rounds must not balloon memory, while
/// the first-violation round (the shrink anchor) is always retained.
#[derive(Debug, Clone, Default)]
pub(crate) struct ViolationLog {
    total: usize,
    kept: Vec<Violation>,
}

impl ViolationLog {
    /// How many violation details are retained per oracle.
    pub(crate) const CAP: usize = 16;

    /// Records a firing; `detail` is only rendered while under the cap.
    pub(crate) fn fire(
        &mut self,
        oracle: &'static str,
        round: u64,
        detail: impl FnOnce() -> String,
    ) {
        self.total += 1;
        if self.kept.len() < Self::CAP {
            self.kept.push(Violation {
                oracle,
                round,
                detail: detail(),
            });
        }
    }

    pub(crate) fn total(&self) -> usize {
        self.total
    }

    pub(crate) fn kept(&self) -> &[Violation] {
        &self.kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_everything_but_keeps_a_cap() {
        let mut log = ViolationLog::default();
        for r in 0..100 {
            log.fire("test-oracle", r, || format!("round {r}"));
        }
        assert_eq!(log.total(), 100);
        assert_eq!(log.kept().len(), ViolationLog::CAP);
        assert_eq!(log.kept()[0].round, 0);
        assert_eq!(log.kept()[0].to_string(), "[test-oracle @ r0] round 0");
    }
}
