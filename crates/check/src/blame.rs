//! Violation blame: a minimal-ish set of corrupted senders that
//! causally explains an agreement disagreement.
//!
//! Given a run that ended with honest deciders split across outputs,
//! the blame set is a small set of corrupted nodes whose messages reach
//! (causally influence) **every** decider on the minority side — the
//! senders one would remove first when slicing a repro along the causal
//! cone. Exact minimum set cover is NP-hard; this module uses the
//! standard greedy cover, which is deterministic, `ln`-approximate, and
//! in practice exact on the small blame sets adversary strategies
//! produce (the PhaseKing × StaticMirror golden pins one).
//!
//! The module is pure and provenance-agnostic: callers supply the
//! influence relation (in the workspace, `aba-obs`'s
//! `ProvenanceProbe::influenced` — the "corrupted when their message
//! entered the cone" closure), so `aba-check` keeps its `aba-sim`-only
//! dependency footprint.

use aba_sim::{NodeId, RunReport};

/// The outcome of a blame computation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlameReport {
    /// The deciders to explain: honest nodes that decided the minority
    /// output (ties broken toward blaming the `true` side).
    pub targets: Vec<NodeId>,
    /// Greedy cover: corrupted nodes that together influence every
    /// covered target, in pick order (each pick covered the most
    /// still-uncovered targets; ties to the lowest ID).
    pub blamed: Vec<NodeId>,
    /// Targets no corrupted node influences at all — a non-empty
    /// remainder means the disagreement is not (causally) attributable
    /// to the adversary's messages.
    pub uncovered: Vec<NodeId>,
}

impl BlameReport {
    /// True when there was nothing to blame (no honest disagreement).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Deterministic single-line render for artifacts:
    /// `blamed=[..] targets=[..] uncovered=[..]`.
    pub fn render(&self) -> String {
        fn ids(v: &[NodeId]) -> String {
            let mut s = String::from("[");
            for (i, id) in v.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&id.index().to_string());
            }
            s.push(']');
            s
        }
        format!(
            "blamed={} targets={} uncovered={}",
            ids(&self.blamed),
            ids(&self.targets),
            ids(&self.uncovered)
        )
    }
}

/// Computes the blame set for an agreement disagreement in `report`.
///
/// `influenced(decider, candidate)` must answer whether `candidate`'s
/// corrupted-at-send-time messages causally reach `decider`'s decision
/// (reflexivity is *not* assumed; a corrupted node never appears as a
/// target because targets are honest).
///
/// Targets are the honest deciders holding the **minority** output; on
/// an exact tie the side holding `true` is targeted, so the choice is
/// deterministic and scenario-independent. With no disagreement (zero
/// or one distinct honest output) the report is empty.
pub fn blame_disagreement(
    report: &RunReport,
    mut influenced: impl FnMut(NodeId, NodeId) -> bool,
) -> BlameReport {
    let n = report.outputs.len();
    let mut holders: [Vec<NodeId>; 2] = [Vec::new(), Vec::new()];
    for i in 0..n {
        if report.honest.get(i).copied().unwrap_or(true) {
            if let Some(Some(o)) = report.outputs.get(i) {
                holders[*o as usize].push(NodeId::new(i as u32));
            }
        }
    }
    if holders[0].is_empty() || holders[1].is_empty() {
        return BlameReport::default();
    }
    let minority = match holders[1].len().cmp(&holders[0].len()) {
        std::cmp::Ordering::Greater => 0,
        // Tie → blame the `true` side.
        _ => 1,
    };
    let targets = holders[minority].clone();

    let candidates: Vec<NodeId> = (0..n)
        .filter(|&i| !report.honest.get(i).copied().unwrap_or(true))
        .map(|i| NodeId::new(i as u32))
        .collect();
    // covers[c] = bitmask over target indices the candidate influences.
    let covers: Vec<u128> = candidates
        .iter()
        .map(|&c| {
            targets
                .iter()
                .enumerate()
                .filter(|(_, &d)| influenced(d, c))
                .fold(0u128, |m, (k, _)| m | (1 << (k % 128)))
        })
        .collect();

    let all: u128 = targets
        .iter()
        .enumerate()
        .fold(0u128, |m, (k, _)| m | (1 << (k % 128)));
    let mut uncovered_mask = all;
    let mut blamed = Vec::new();
    let mut used = vec![false; candidates.len()];
    loop {
        let mut best: Option<(usize, u32)> = None;
        for (ci, &mask) in covers.iter().enumerate() {
            if used[ci] {
                continue;
            }
            let gain = (mask & uncovered_mask).count_ones();
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((ci, gain));
            }
        }
        let Some((ci, _)) = best else { break };
        used[ci] = true;
        uncovered_mask &= !covers[ci];
        blamed.push(candidates[ci]);
        if uncovered_mask == 0 {
            break;
        }
    }
    let uncovered = targets
        .iter()
        .enumerate()
        .filter(|(k, _)| uncovered_mask & (1 << (k % 128)) != 0)
        .map(|(_, &d)| d)
        .collect();
    BlameReport {
        targets,
        blamed,
        uncovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::{RunMetrics, Trace};

    fn report(outputs: Vec<Option<bool>>, honest: Vec<bool>) -> RunReport {
        RunReport {
            rounds: 1,
            all_halted: true,
            honest: honest.clone(),
            halt_rounds: vec![Some(0); outputs.len()],
            corruptions_used: honest.iter().filter(|h| !**h).count(),
            outputs,
            metrics: RunMetrics::default(),
            trace: Trace::default(),
        }
    }

    #[test]
    fn agreement_means_empty_blame() {
        let r = report(vec![Some(true), Some(true), None], vec![true, true, false]);
        let b = blame_disagreement(&r, |_, _| true);
        assert!(b.is_empty());
        assert_eq!(b.render(), "blamed=[] targets=[] uncovered=[]");
    }

    #[test]
    fn minority_side_is_targeted_and_tie_targets_true() {
        // 2×false vs 1×true → targets the lone true-holder (node 2).
        let r = report(
            vec![Some(false), Some(false), Some(true), None],
            vec![true, true, true, false],
        );
        let b = blame_disagreement(&r, |d, _| d == NodeId::new(2));
        assert_eq!(b.targets, vec![NodeId::new(2)]);
        assert_eq!(b.blamed, vec![NodeId::new(3)]);
        assert!(b.uncovered.is_empty());
        // 1 vs 1 tie → the true side is targeted.
        let r = report(vec![Some(false), Some(true), None], vec![true, true, false]);
        let b = blame_disagreement(&r, |_, _| true);
        assert_eq!(b.targets, vec![NodeId::new(1)]);
    }

    #[test]
    fn greedy_prefers_the_biggest_cover_then_lowest_id() {
        // Honest 0..4 split 1×false / 4×true?? — make minority = nodes
        // 0,1 (false) vs 2,3,4 (true); corrupted 5 covers both targets,
        // corrupted 6 covers only node 0.
        let r = report(
            vec![
                Some(false),
                Some(false),
                Some(true),
                Some(true),
                Some(true),
                None,
                None,
            ],
            vec![true, true, true, true, true, false, false],
        );
        let b = blame_disagreement(&r, |d, c| {
            c == NodeId::new(5) || (c == NodeId::new(6) && d == NodeId::new(0))
        });
        assert_eq!(b.blamed, vec![NodeId::new(5)]);
        assert!(b.uncovered.is_empty());
        // When two candidates tie on coverage, the lower ID wins.
        let b = blame_disagreement(&r, |_, _| true);
        assert_eq!(b.blamed, vec![NodeId::new(5)]);
    }

    #[test]
    fn uninfluenced_targets_are_reported_uncovered() {
        let r = report(
            vec![Some(false), Some(true), Some(true), None],
            vec![true, true, true, false],
        );
        let b = blame_disagreement(&r, |_, _| false);
        assert_eq!(b.targets, vec![NodeId::new(0)]);
        assert!(b.blamed.is_empty());
        assert_eq!(b.uncovered, vec![NodeId::new(0)]);
        assert_eq!(b.render(), "blamed=[] targets=[0] uncovered=[0]");
    }
}
