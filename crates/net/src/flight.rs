//! The in-flight message queue.
//!
//! [`FlightQueue`] generalizes the engine's per-round mailbox across
//! rounds: every routed message — even one delivered immediately — is
//! enqueued with a due round, then drained into the round's arrivals
//! mailbox in emission (sequence) order. Because each ordered node pair
//! exchanges at most one message per round in this engine (the CONGEST
//! invariant `max_edge_bits` relies on), a link that already carries a
//! message this round defers any further due traffic to the next round,
//! oldest-first — FIFO links with unit per-round capacity.

use aba_sim::{Message, NodeId, Round, RoundMailbox};

/// One message travelling between rounds.
#[derive(Debug, Clone)]
struct InFlight<M> {
    /// Round index at which the message becomes deliverable.
    due: u64,
    /// Round index at which it was emitted (`due >= emit` always).
    emit: u64,
    sender: NodeId,
    receiver: NodeId,
    msg: M,
}

/// Outcome of one [`FlightQueue::drain_due`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainOutcome {
    /// Messages moved into the arrivals mailbox.
    pub delivered: usize,
    /// Due messages deferred to the next round because their link was
    /// already carrying an older message.
    pub deferred: usize,
}

/// Cross-round message store with FIFO per-link delivery.
#[derive(Debug, Clone)]
pub struct FlightQueue<M> {
    /// Kept in sequence (emission) order: pushes append, and deferrals
    /// preserve positions, so draining front-to-back is oldest-first.
    entries: Vec<InFlight<M>>,
}

impl<M: Message> FlightQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        FlightQueue {
            entries: Vec::new(),
        }
    }

    /// Messages currently in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueues a message emitted in `emit` for delivery at `due`.
    ///
    /// # Panics
    ///
    /// Panics if `due < emit`: a message cannot arrive before it was
    /// sent.
    pub fn push(&mut self, emit: Round, due: u64, sender: NodeId, receiver: NodeId, msg: M) {
        assert!(
            due >= emit.index(),
            "message due r{due} before its emission {emit}"
        );
        self.entries.push(InFlight {
            due,
            emit: emit.index(),
            sender,
            receiver,
            msg,
        });
    }

    /// Moves every message due by `round` into `out`, oldest first; a
    /// due message whose link is already occupied in `out` slips to the
    /// next round. Messages due later stay queued untouched.
    pub fn drain_due(&mut self, round: Round, out: &mut RoundMailbox<M>) -> DrainOutcome {
        let mut outcome = DrainOutcome::default();
        let mut kept = Vec::with_capacity(self.entries.len());
        for mut e in self.entries.drain(..) {
            if e.due > round.index() {
                kept.push(e);
            } else if out.resolve(e.sender, e.receiver).is_some() {
                e.due = round.index() + 1;
                outcome.deferred += 1;
                kept.push(e);
            } else {
                debug_assert!(e.emit <= round.index(), "delivery before emission");
                out.insert(e.sender, e.receiver, e.msg);
                outcome.delivered += 1;
            }
        }
        self.entries = kept;
        outcome
    }
}

impl<M: Message> Default for FlightQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn due_messages_deliver_future_ones_wait() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        q.push(Round::ZERO, 0, id(0), id(1), Tm(1));
        q.push(Round::ZERO, 2, id(0), id(2), Tm(2));
        let mut out = RoundMailbox::new(3);
        let o = q.drain_due(Round::ZERO, &mut out);
        assert_eq!(
            o,
            DrainOutcome {
                delivered: 1,
                deferred: 0
            }
        );
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(1)));
        assert_eq!(out.resolve(id(0), id(2)), None);
        assert_eq!(q.len(), 1);
        // Round 1: still not due.
        let mut out = RoundMailbox::new(3);
        assert_eq!(q.drain_due(Round::new(1), &mut out).delivered, 0);
        // Round 2: arrives.
        let mut out = RoundMailbox::new(3);
        assert_eq!(q.drain_due(Round::new(2), &mut out).delivered, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn busy_link_defers_oldest_first() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        // Two messages on the same link, emitted in rounds 0 and 1, both
        // due by round 1.
        q.push(Round::ZERO, 1, id(0), id(1), Tm(1));
        q.push(Round::new(1), 1, id(0), id(1), Tm(2));
        let mut out = RoundMailbox::new(2);
        let o = q.drain_due(Round::new(1), &mut out);
        assert_eq!(
            o,
            DrainOutcome {
                delivered: 1,
                deferred: 1
            }
        );
        // The older message won the link.
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(1)));
        // The younger one arrives next round.
        let mut out = RoundMailbox::new(2);
        assert_eq!(q.drain_due(Round::new(2), &mut out).delivered, 1);
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn no_message_is_duplicated() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        for r in 0..4u32 {
            q.push(Round::ZERO, 0, id(0), id(r + 1), Tm(r as u8));
        }
        let mut out = RoundMailbox::new(8);
        assert_eq!(q.drain_due(Round::ZERO, &mut out).delivered, 4);
        // Draining again delivers nothing: the queue handed them off.
        let mut out2 = RoundMailbox::new(8);
        assert_eq!(q.drain_due(Round::ZERO, &mut out2).delivered, 0);
        assert_eq!(out2.message_count(), 0);
    }

    #[test]
    #[should_panic(expected = "before its emission")]
    fn delivery_before_emission_is_rejected() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        q.push(Round::new(5), 3, id(0), id(1), Tm(0));
    }
}
