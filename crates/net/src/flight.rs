//! The in-flight message queue.
//!
//! [`FlightQueue`] generalizes the engine's per-round mailbox across
//! rounds. Messages travel as **grouped flights**: one group per
//! `(sender, emission round, due round)` carrying a single shared
//! message and a pooled receiver list — a delayed broadcast is one group
//! with many receivers, not `n` cloned entries. The message is cloned
//! only per *delivered* receiver, at drain time.
//!
//! Groups are kept in push (sequence) order and drained front-to-back
//! into the round's arrivals mailbox. Because each ordered node pair
//! exchanges at most one message per round in this engine (the CONGEST
//! invariant `max_edge_bits` relies on), two receivers of one group can
//! never contend for the same link; contention only happens *between*
//! groups, and group order is push order — so delivery is FIFO per link
//! with unit per-round capacity, exactly as with individual entries. A
//! receiver whose link is already carrying an older message slips to the
//! next round inside its group (the group splits off its undelivered
//! tail as a `due + 1` group in place, preserving its position).

use aba_sim::{Message, MessagePlane, NodeId, Round};

#[cfg(test)]
use aba_sim::RoundMailbox;

/// One group of messages travelling between rounds: the same payload
/// from one sender to many receivers, emitted and due together.
#[derive(Debug, Clone)]
struct Flight<M> {
    /// Round index at which the group becomes deliverable.
    due: u64,
    /// Round index at which it was emitted (`due >= emit` always).
    emit: u64,
    sender: NodeId,
    /// Receivers still owed the message, in routing order.
    receivers: Vec<u32>,
    msg: M,
}

/// Outcome of one [`FlightQueue::drain_due`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainOutcome {
    /// Messages moved into the arrivals mailbox.
    pub delivered: usize,
    /// Due messages deferred to the next round because their link was
    /// already carrying an older message.
    pub deferred: usize,
}

/// Cross-round message store with FIFO per-link delivery.
#[derive(Debug, Clone)]
pub struct FlightQueue<M> {
    /// Kept in sequence (push) order: pushes append, and deferrals
    /// preserve positions, so draining front-to-back is oldest-first.
    groups: Vec<Flight<M>>,
    /// Total receivers across all groups (the in-flight message count).
    messages: usize,
    /// Drained-group scratch, swapped with `groups` during
    /// [`FlightQueue::drain_due`] so draining allocates nothing after
    /// warm-up.
    scratch: Vec<Flight<M>>,
    /// Retired receiver lists, recycled so steady-state pushes allocate
    /// nothing.
    vec_pool: Vec<Vec<u32>>,
}

impl<M: Message> FlightQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        FlightQueue {
            groups: Vec::new(),
            messages: 0,
            scratch: Vec::new(),
            vec_pool: Vec::new(),
        }
    }

    /// Messages currently in flight.
    pub fn len(&self) -> usize {
        self.messages
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.messages == 0
    }

    fn fresh_receivers(&mut self) -> Vec<u32> {
        self.vec_pool.pop().unwrap_or_default()
    }

    /// Enqueues a single message emitted in `emit` for delivery at `due`
    /// (a group of one).
    ///
    /// # Panics
    ///
    /// Panics if `due < emit`: a message cannot arrive before it was
    /// sent.
    pub fn push(&mut self, emit: Round, due: u64, sender: NodeId, receiver: NodeId, msg: M) {
        assert!(
            due >= emit.index(),
            "message due r{due} before its emission {emit}"
        );
        let mut receivers = self.fresh_receivers();
        receivers.push(receiver.raw());
        self.messages += 1;
        self.groups.push(Flight {
            due,
            emit: emit.index(),
            sender,
            receivers,
            msg,
        });
    }

    /// Enqueues one shared message from `sender` to every receiver in
    /// `receivers` (routing order), emitted in `emit` and due at `due`.
    /// The receiver list is copied into a pooled buffer; the message is
    /// stored once.
    ///
    /// # Panics
    ///
    /// Panics if `due < emit` or `receivers` is empty.
    pub fn push_group(&mut self, emit: Round, due: u64, sender: NodeId, receivers: &[u32], msg: M) {
        assert!(
            due >= emit.index(),
            "message due r{due} before its emission {emit}"
        );
        assert!(!receivers.is_empty(), "flight group with no receivers");
        let mut list = self.fresh_receivers();
        list.extend_from_slice(receivers);
        self.messages += list.len();
        self.groups.push(Flight {
            due,
            emit: emit.index(),
            sender,
            receivers: list,
            msg,
        });
    }

    /// Moves every message due by `round` into `out`, oldest first; a
    /// due message whose link is already occupied in `out` slips to the
    /// next round. Messages due later stay queued untouched. Generic
    /// over the message plane: the queue drains into the packed plane
    /// exactly as into the dense mailbox.
    pub fn drain_due<L: MessagePlane<M>>(&mut self, round: Round, out: &mut L) -> DrainOutcome {
        let mut outcome = DrainOutcome::default();
        // Ping-pong with the pooled scratch vector: `drain` moves groups
        // out without giving up either buffer's capacity, so steady-state
        // drains allocate nothing.
        std::mem::swap(&mut self.groups, &mut self.scratch);
        for mut g in self.scratch.drain(..) {
            if g.due > round.index() {
                self.groups.push(g);
                continue;
            }
            debug_assert!(g.emit <= round.index(), "delivery before emission");
            // A group of one (point-to-point traffic, or a broadcast's
            // final bounce) moves its owned message instead of cloning.
            if g.receivers.len() == 1 {
                let receiver = NodeId::new(g.receivers[0]);
                match out.insert_if_vacant(g.sender, receiver, g.msg) {
                    None => {
                        outcome.delivered += 1;
                        self.messages -= 1;
                        g.receivers.clear();
                        self.vec_pool.push(g.receivers);
                    }
                    Some(msg) => {
                        g.msg = msg;
                        g.due = round.index() + 1;
                        outcome.deferred += 1;
                        self.groups.push(g);
                    }
                }
                continue;
            }
            // Deliver every receiver whose link is free; compact the
            // deferred tail in place so the group keeps its queue
            // position (FIFO) without reallocating.
            let mut kept = 0;
            for i in 0..g.receivers.len() {
                let receiver = NodeId::new(g.receivers[i]);
                if out.insert_if_vacant_with(g.sender, receiver, || g.msg.clone()) {
                    outcome.delivered += 1;
                    self.messages -= 1;
                } else {
                    g.receivers[kept] = g.receivers[i];
                    kept += 1;
                }
            }
            if kept > 0 {
                g.receivers.truncate(kept);
                outcome.deferred += kept;
                g.due = round.index() + 1;
                self.groups.push(g);
            } else {
                g.receivers.clear();
                self.vec_pool.push(g.receivers);
            }
        }
        outcome
    }
}

impl<M: Message> Default for FlightQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn due_messages_deliver_future_ones_wait() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        q.push(Round::ZERO, 0, id(0), id(1), Tm(1));
        q.push(Round::ZERO, 2, id(0), id(2), Tm(2));
        let mut out = RoundMailbox::new(3);
        let o = q.drain_due(Round::ZERO, &mut out);
        assert_eq!(
            o,
            DrainOutcome {
                delivered: 1,
                deferred: 0
            }
        );
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(1)));
        assert_eq!(out.resolve(id(0), id(2)), None);
        assert_eq!(q.len(), 1);
        // Round 1: still not due.
        let mut out = RoundMailbox::new(3);
        assert_eq!(q.drain_due(Round::new(1), &mut out).delivered, 0);
        // Round 2: arrives.
        let mut out = RoundMailbox::new(3);
        assert_eq!(q.drain_due(Round::new(2), &mut out).delivered, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn busy_link_defers_oldest_first() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        // Two messages on the same link, emitted in rounds 0 and 1, both
        // due by round 1.
        q.push(Round::ZERO, 1, id(0), id(1), Tm(1));
        q.push(Round::new(1), 1, id(0), id(1), Tm(2));
        let mut out = RoundMailbox::new(2);
        let o = q.drain_due(Round::new(1), &mut out);
        assert_eq!(
            o,
            DrainOutcome {
                delivered: 1,
                deferred: 1
            }
        );
        // The older message won the link.
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(1)));
        // The younger one arrives next round.
        let mut out = RoundMailbox::new(2);
        assert_eq!(q.drain_due(Round::new(2), &mut out).delivered, 1);
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn no_message_is_duplicated() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        for r in 0..4u32 {
            q.push(Round::ZERO, 0, id(0), id(r + 1), Tm(r as u8));
        }
        let mut out = RoundMailbox::new(8);
        assert_eq!(q.drain_due(Round::ZERO, &mut out).delivered, 4);
        // Draining again delivers nothing: the queue handed them off.
        let mut out2 = RoundMailbox::new(8);
        assert_eq!(q.drain_due(Round::ZERO, &mut out2).delivered, 0);
        assert_eq!(out2.message_count(), 0);
    }

    #[test]
    #[should_panic(expected = "before its emission")]
    fn delivery_before_emission_is_rejected() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        q.push(Round::new(5), 3, id(0), id(1), Tm(0));
    }

    #[test]
    fn group_shares_one_message_across_receivers() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        q.push_group(Round::ZERO, 1, id(0), &[1, 2, 3], Tm(7));
        assert_eq!(q.len(), 3);
        let mut out = RoundMailbox::new(4);
        assert_eq!(q.drain_due(Round::ZERO, &mut out).delivered, 0, "not due");
        let mut out = RoundMailbox::new(4);
        let o = q.drain_due(Round::new(1), &mut out);
        assert_eq!(o.delivered, 3);
        for r in 1..4 {
            assert_eq!(out.resolve(id(0), id(r)), Some(&Tm(7)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn group_splits_on_partially_busy_links() {
        let mut q: FlightQueue<Tm> = FlightQueue::new();
        // An older single already owns link (0, 2) at round 1.
        q.push(Round::ZERO, 1, id(0), id(2), Tm(9));
        q.push_group(Round::new(1), 1, id(0), &[1, 2, 3], Tm(7));
        let mut out = RoundMailbox::new(4);
        let o = q.drain_due(Round::new(1), &mut out);
        assert_eq!(o.delivered, 3, "single + two group receivers");
        assert_eq!(o.deferred, 1, "group receiver 2 lost its link");
        assert_eq!(out.resolve(id(0), id(2)), Some(&Tm(9)), "older wins");
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(7)));
        assert_eq!(q.len(), 1);
        // The split-off tail lands next round.
        let mut out = RoundMailbox::new(4);
        assert_eq!(q.drain_due(Round::new(2), &mut out).delivered, 1);
        assert_eq!(out.resolve(id(0), id(2)), Some(&Tm(7)));
        assert!(q.is_empty());
    }
}
