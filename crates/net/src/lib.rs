//! # aba-net — pluggable network conditions for the round engine
//!
//! The paper's model (and the `aba-sim` engine's default) is strictly
//! lock-step synchronous: every message emitted in a round is delivered
//! in that round. This crate weakens that assumption along the axes the
//! related work studies — unreliable links (King–Saia's
//! bandwidth-limited regime) and adversarial scheduling under partial
//! synchrony (Lewko–Lewko) — while keeping every run a pure function of
//! its master seed.
//!
//! Three pieces compose:
//!
//! * [`NetworkModel`] — the per-message policy: deliver now, delay by
//!   `d`, or drop ([`Fate`]). Shipped models: [`Synchronous`],
//!   [`LossyLinks`], [`BoundedDelay`] (random or adversarial
//!   [`DelayScheduler`]), [`Partition`].
//! * [`FlightQueue`] — the mechanism that carries delayed messages
//!   across rounds, FIFO per link, one message per link per round.
//! * [`NetDelivery`] — the adapter implementing the engine's
//!   [`aba_sim::Delivery`] seam on top of the two.
//!
//! ## Wiring a model into a run
//!
//! ```
//! use aba_net::{LossyLinks, NetDelivery};
//! use aba_sim::prelude::*;
//!
//! # #[derive(Debug, Clone)]
//! # struct Echo { done: bool, heard: usize }
//! # #[derive(Debug, Clone)]
//! # struct Ping;
//! # impl Message for Ping { fn bit_size(&self) -> usize { 1 } }
//! # impl Protocol for Echo {
//! #     type Msg = Ping;
//! #     fn emit(&mut self, _: Round, _: &mut dyn rand::RngCore) -> Emission<Ping> {
//! #         Emission::Broadcast(Ping)
//! #     }
//! #     fn receive(&mut self, _: Round, inbox: Inbox<'_, Ping>, _: &mut dyn rand::RngCore) {
//! #         self.heard = inbox.len();
//! #         self.done = true;
//! #     }
//! #     fn output(&self) -> Option<bool> { self.done.then_some(self.heard > 0) }
//! #     fn halted(&self) -> bool { self.done }
//! # }
//! let cfg = SimConfig::new(8, 0).with_seed(42);
//! let nodes: Vec<Echo> = (0..8).map(|_| Echo { done: false, heard: 0 }).collect();
//! let net = NetDelivery::new(LossyLinks::new(0.25), cfg.seed);
//! let report = Simulation::with_network(cfg, nodes, aba_sim::adversary::Benign, net).run();
//! assert!(report.metrics.total_delivered < report.metrics.total_messages);
//! ```
//!
//! Experiment code should not touch this layer directly: the
//! `ScenarioBuilder` facade exposes it as
//! `.network(NetworkSpec::LossyLinks { p_drop: 0.1 })`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delivery;
pub mod flight;
pub mod model;
pub mod models;

pub use delivery::NetDelivery;
pub use flight::{DrainOutcome, FlightQueue};
pub use model::{Fate, Link, NetworkModel};
pub use models::{BoundedDelay, DelayScheduler, LossyLinks, Partition, Synchronous};

/// Convenient glob import.
pub mod prelude {
    pub use crate::delivery::NetDelivery;
    pub use crate::flight::{DrainOutcome, FlightQueue};
    pub use crate::model::{Fate, Link, NetworkModel};
    pub use crate::models::{BoundedDelay, DelayScheduler, LossyLinks, Partition, Synchronous};
}
