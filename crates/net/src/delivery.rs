//! [`NetDelivery`]: the driver that plugs a [`NetworkModel`] into the
//! engine's delivery seam.
//!
//! Per round it routes every point-to-point message of the wire mailbox
//! through the model, parks the survivors in a [`FlightQueue`] (due this
//! round or later), and drains everything due into the arrivals mailbox
//! — FIFO per link, one message per link per round, so the CONGEST
//! accounting invariant survives arbitrary delay patterns.
//!
//! When the model is transparent for the round and nothing is in flight,
//! the wire mailbox is passed through untouched: no broadcast expansion,
//! no RNG draws, no allocation — which is what makes
//! [`crate::Synchronous`] bit-for-bit identical to the pre-network
//! engine.

use crate::flight::FlightQueue;
use crate::model::{Fate, Link, NetworkModel};
use aba_sim::rng::{rng_for, streams};
use aba_sim::{CorruptionLedger, Delivery, DeliveryStats, Message, NodeId, Round, RoundMailbox};
use rand::rngs::SmallRng;

/// Delivery stage backed by a pluggable network model and a cross-round
/// flight queue. Construct with the run's master seed: the model draws
/// from the dedicated network RNG stream, so enabling it never perturbs
/// node or adversary randomness.
#[derive(Debug)]
pub struct NetDelivery<M, N> {
    model: N,
    queue: FlightQueue<M>,
    rng: SmallRng,
}

impl<M: Message, N: NetworkModel> NetDelivery<M, N> {
    /// Creates the stage for a run with the given master seed.
    pub fn new(model: N, master_seed: u64) -> Self {
        NetDelivery {
            model,
            queue: FlightQueue::new(),
            rng: rng_for(master_seed, streams::NETWORK),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &N {
        &self.model
    }
}

impl<M: Message, N: NetworkModel> Delivery<M> for NetDelivery<M, N> {
    fn deliver(
        &mut self,
        round: Round,
        wire: RoundMailbox<M>,
        ledger: &CorruptionLedger,
    ) -> (RoundMailbox<M>, DeliveryStats) {
        let mut stats = DeliveryStats::default();
        if self.model.transparent(round) && self.queue.is_empty() {
            stats.delivered = wire.message_count();
            return (wire, stats);
        }

        let n = wire.n();
        let mut out = RoundMailbox::new(n);
        for s in 0..n as u32 {
            let sender = NodeId::new(s);
            let sender_honest = !ledger.is_corrupted(sender);
            for r in 0..n as u32 {
                let receiver = NodeId::new(r);
                let Some(m) = wire.resolve(sender, receiver) else {
                    continue;
                };
                // A node's self-copy of its own broadcast never touches
                // the network: deliver it directly (it is also excluded
                // from `message_count`, so it is not in the stats).
                if sender == receiver {
                    out.insert(sender, receiver, m.clone());
                    continue;
                }
                let link = Link {
                    sender,
                    receiver,
                    sender_honest,
                };
                match self.model.route(round, link, &mut self.rng) {
                    Fate::Deliver => {
                        self.queue
                            .push(round, round.index(), sender, receiver, m.clone());
                    }
                    Fate::Delay(d) => {
                        stats.delayed += 1;
                        let due = round.index() + d.max(1);
                        self.queue.push(round, due, sender, receiver, m.clone());
                    }
                    Fate::Drop => stats.dropped += 1,
                }
            }
        }

        let drained = self.queue.drain_due(round, &mut out);
        stats.delivered = drained.delivered;
        stats.delayed += drained.deferred;
        (out, stats)
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{BoundedDelay, DelayScheduler, LossyLinks, Partition, Synchronous};
    use aba_sim::Emission;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn full_broadcast(n: usize) -> RoundMailbox<Tm> {
        let mut mb = RoundMailbox::new(n);
        for i in 0..n as u32 {
            mb.set(id(i), Emission::Broadcast(Tm(i as u8)));
        }
        mb
    }

    #[test]
    fn synchronous_fast_path_passes_wire_through() {
        let mut d: NetDelivery<Tm, _> = NetDelivery::new(Synchronous, 7);
        let ledger = CorruptionLedger::new(4, 0);
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(4), &ledger);
        assert_eq!(stats.delivered, 12);
        assert_eq!((stats.dropped, stats.delayed), (0, 0));
        // The broadcast structure is preserved (no per-recipient
        // expansion happened).
        assert!(out.is_broadcast(id(0)));
        assert_eq!(Delivery::<Tm>::in_flight(&d), 0);
    }

    #[test]
    fn total_loss_drops_everything_but_self_copies() {
        let mut d: NetDelivery<Tm, _> = NetDelivery::new(LossyLinks::new(1.0), 7);
        let ledger = CorruptionLedger::new(3, 0);
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(3), &ledger);
        assert_eq!(stats.dropped, 6);
        assert_eq!(stats.delivered, 0);
        // Every node still hears itself.
        for i in 0..3 {
            assert_eq!(out.resolve(id(i), id(i)), Some(&Tm(i as u8)));
            assert_eq!(out.inbox(id(i)).len(), 1);
        }
    }

    #[test]
    fn conservation_no_loss_no_duplication() {
        let mut d: NetDelivery<Tm, _> =
            NetDelivery::new(BoundedDelay::new(3, DelayScheduler::Random), 11);
        let ledger = CorruptionLedger::new(5, 0);
        let emitted_per_round = 20; // 5 broadcasts × 4 remote receivers
        let rounds = 8u64;
        let mut delivered_total = 0;
        for r in 0..rounds {
            let (_, stats) = d.deliver(Round::new(r), full_broadcast(5), &ledger);
            delivered_total += stats.delivered;
        }
        // Flush the tail: emit nothing, keep draining.
        for r in rounds..rounds + 8 {
            let (_, stats) = d.deliver(Round::new(r), RoundMailbox::new(5), &ledger);
            delivered_total += stats.delivered;
        }
        assert_eq!(Delivery::<Tm>::in_flight(&d), 0);
        assert_eq!(delivered_total, emitted_per_round * rounds as usize);
    }

    #[test]
    fn adversarial_scheduler_expedites_corrupted_senders() {
        let mut d: NetDelivery<Tm, _> =
            NetDelivery::new(BoundedDelay::new(2, DelayScheduler::DelayHonest), 3);
        let mut ledger = CorruptionLedger::new(3, 1);
        ledger.corrupt(id(0), Round::ZERO).unwrap();
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(3), &ledger);
        // Corrupted node 0's two messages arrive now; honest traffic
        // (4 messages) is held the full 2 rounds.
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.delayed, 4);
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(0)));
        assert_eq!(out.resolve(id(1), id(2)), None);
        // Two rounds later the held messages land.
        let (_, s1) = d.deliver(Round::new(1), RoundMailbox::new(3), &ledger);
        assert_eq!(s1.delivered, 0);
        let (out2, s2) = d.deliver(Round::new(2), RoundMailbox::new(3), &ledger);
        assert_eq!(s2.delivered, 4);
        assert_eq!(out2.resolve(id(1), id(2)), Some(&Tm(1)));
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_heal() {
        let mut d: NetDelivery<Tm, _> = NetDelivery::new(Partition::striped(4, 2, 2), 5);
        let ledger = CorruptionLedger::new(4, 0);
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(4), &ledger);
        // Groups {0,2} and {1,3}: each node reaches 1 remote peer out of
        // 3, so 4 delivered and 8 dropped.
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.dropped, 8);
        assert_eq!(out.resolve(id(0), id(2)), Some(&Tm(0)));
        assert_eq!(out.resolve(id(0), id(1)), None);
        // Healed: transparent fast path, everything flows.
        let (_, healed) = d.deliver(Round::new(2), full_broadcast(4), &ledger);
        assert_eq!(healed.delivered, 12);
        assert_eq!(healed.dropped, 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| {
            let mut d: NetDelivery<Tm, _> = NetDelivery::new(LossyLinks::new(0.5), seed);
            let ledger = CorruptionLedger::new(6, 0);
            let mut sig = Vec::new();
            for r in 0..6 {
                let (out, stats) = d.deliver(Round::new(r), full_broadcast(6), &ledger);
                sig.push((stats, out.message_count()));
            }
            sig
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds explore different drops");
    }
}
