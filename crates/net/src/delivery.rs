//! [`NetDelivery`]: the driver that plugs a [`NetworkModel`] into the
//! engine's delivery seam.
//!
//! Per round it routes every point-to-point message of the wire mailbox
//! through the model; survivors of a broadcast stay one shared row while
//! delayed traffic parks in a [`FlightQueue`] (due later), which drains
//! into the arrivals mailbox — FIFO per link, one message per link per
//! round, so the CONGEST accounting invariant survives arbitrary delay
//! patterns.
//!
//! When the model is transparent for the round and nothing is in flight,
//! the wire mailbox is passed through untouched: no broadcast expansion,
//! no RNG draws, no allocation — which is what makes
//! [`crate::Synchronous`] bit-for-bit identical to the pre-network
//! engine.

use crate::flight::FlightQueue;
use crate::model::{Fate, Link, NetworkModel};
use aba_sim::rng::{rng_for, streams};
use aba_sim::{
    CorruptionLedger, Delivery, DeliveryStats, Message, MessagePlane, NodeId, Round, RoundMailbox,
};
use rand::rngs::SmallRng;

/// Delivery stage backed by a pluggable network model and a cross-round
/// flight queue. Construct with the run's master seed: the model draws
/// from the dedicated network RNG stream, so enabling it never perturbs
/// node or adversary randomness.
///
/// The stage is broadcast-aware: a broadcast whose links survive is
/// stored in the arrivals mailbox as one shared row — the message is
/// *moved*, not cloned `n` times — and only delayed or deferred copies
/// are cloned into the flight queue. All scratch buffers and the
/// arrivals mailbox itself are pooled across rounds, so steady-state
/// delivery allocates nothing.
#[derive(Debug)]
pub struct NetDelivery<M, N, L = RoundMailbox<M>> {
    model: N,
    queue: FlightQueue<M>,
    rng: SmallRng,
    /// Pooled arrivals plane; swaps with the engine's wire plane
    /// every non-transparent round.
    pool: L,
    /// Receivers knocked out of this round's broadcasts (flat, ascending
    /// per sender), indexed by `bcast_spans`.
    knocked_flat: Vec<u32>,
    /// `(sender, start, end)` spans into `knocked_flat`, one per
    /// broadcasting sender this round.
    bcast_spans: Vec<(u32, usize, usize)>,
    /// This round's surviving non-broadcast messages, merged after the
    /// flight queue drains (older in-flight traffic wins a busy link).
    fresh: Vec<(u32, u32)>,
    /// Per-sender scratch: receivers whose link was already owned by an
    /// older in-flight message when a broadcast merged.
    conflicts: Vec<u32>,
    /// Per-sender scratch: open `(due, receivers)` delay groups of the
    /// broadcast currently being routed.
    delay_groups: Vec<(u64, Vec<u32>)>,
    /// Recycled receiver lists for `delay_groups`.
    spare_lists: Vec<Vec<u32>>,
}

impl<M: Message, N: NetworkModel, L: MessagePlane<M>> NetDelivery<M, N, L> {
    /// Creates the stage for a run with the given master seed.
    pub fn new(model: N, master_seed: u64) -> Self {
        NetDelivery {
            model,
            queue: FlightQueue::new(),
            rng: rng_for(master_seed, streams::NETWORK),
            pool: L::default(),
            knocked_flat: Vec::new(),
            bcast_spans: Vec::new(),
            fresh: Vec::new(),
            conflicts: Vec::new(),
            delay_groups: Vec::new(),
            spare_lists: Vec::new(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &N {
        &self.model
    }
}

impl<M: Message, N: NetworkModel, L: MessagePlane<M>> Delivery<M, L> for NetDelivery<M, N, L> {
    fn deliver(
        &mut self,
        round: Round,
        mut wire: L,
        ledger: &CorruptionLedger,
    ) -> (L, DeliveryStats) {
        let mut stats = DeliveryStats::default();
        if self.model.transparent(round) && self.queue.is_empty() {
            stats.delivered = wire.message_count();
            return (wire, stats);
        }

        let n = wire.n();
        let mut out = std::mem::take(&mut self.pool);
        out.reset(n);
        self.knocked_flat.clear();
        self.bcast_spans.clear();
        self.fresh.clear();

        // Route every fresh message through the model, in (sender,
        // receiver) order — the RNG consumption order is part of the
        // engine's determinism contract. Survivors are *not* placed in
        // the arrivals mailbox yet: older in-flight traffic must win a
        // busy link, so fresh survivors merge after the queue drains.
        for s in 0..n as u32 {
            let sender = NodeId::new(s);
            if wire.is_silent(sender) {
                continue;
            }
            let sender_honest = !ledger.is_corrupted(sender);
            if let Some(m) = wire.broadcast_of(sender) {
                // Broadcast row: survivors stay implicit (one shared
                // copy); knocked-out receivers are recorded per sender,
                // and delayed receivers accumulate into per-due flight
                // groups — one queued clone per group, not per receiver.
                let start = self.knocked_flat.len();
                for r in 0..n as u32 {
                    if r == s {
                        continue; // the local self-copy never routes
                    }
                    let link = Link {
                        sender,
                        receiver: NodeId::new(r),
                        sender_honest,
                    };
                    match self.model.route(round, link, &mut self.rng) {
                        Fate::Deliver => {}
                        Fate::Delay(d) => {
                            stats.delayed += 1;
                            let due = round.index() + d.max(1);
                            self.knocked_flat.push(r);
                            let group = match self.delay_groups.iter_mut().find(|(g, _)| *g == due)
                            {
                                Some((_, list)) => list,
                                None => {
                                    let list = self.spare_lists.pop().unwrap_or_default();
                                    self.delay_groups.push((due, list));
                                    &mut self.delay_groups.last_mut().expect("just pushed").1
                                }
                            };
                            group.push(r);
                        }
                        Fate::Drop => {
                            stats.dropped += 1;
                            self.knocked_flat.push(r);
                        }
                    }
                }
                for (due, mut list) in self.delay_groups.drain(..) {
                    self.queue.push_group(round, due, sender, &list, m.clone());
                    list.clear();
                    self.spare_lists.push(list);
                }
                self.bcast_spans.push((s, start, self.knocked_flat.len()));
            } else {
                for r in 0..n as u32 {
                    let receiver = NodeId::new(r);
                    if !wire.has_message(sender, receiver) {
                        continue;
                    }
                    // A node's self-copy never touches the network:
                    // deliver it directly (it is also excluded from
                    // `message_count`, so it is not in the stats). It
                    // cannot conflict with queued traffic — the queue
                    // never carries self-links.
                    if r == s {
                        let m = wire
                            .resolve_value(sender, receiver)
                            .expect("present message resolves");
                        out.insert(sender, receiver, m);
                        continue;
                    }
                    let link = Link {
                        sender,
                        receiver,
                        sender_honest,
                    };
                    match self.model.route(round, link, &mut self.rng) {
                        Fate::Deliver => self.fresh.push((s, r)),
                        Fate::Delay(d) => {
                            stats.delayed += 1;
                            let due = round.index() + d.max(1);
                            let m = wire
                                .resolve_value(sender, receiver)
                                .expect("present message resolves");
                            self.queue.push(round, due, sender, receiver, m);
                        }
                        Fate::Drop => stats.dropped += 1,
                    }
                }
            }
        }

        // Older in-flight traffic lands first (FIFO per link).
        let drained = self.queue.drain_due(round, &mut out);
        stats.delivered += drained.delivered;
        stats.delayed += drained.deferred;

        // Merge this round's surviving broadcasts. The common case — no
        // old traffic landed on the sender's row — installs one shared
        // row and moves the base out of the wire mailbox: zero clones.
        for &(s, start, end) in &self.bcast_spans {
            let sender = NodeId::new(s);
            let knocked = &self.knocked_flat[start..end];
            let base = wire
                .take_broadcast(sender)
                .expect("broadcast row vanished mid-round");
            if out.is_silent(sender) {
                stats.delivered += n - 1 - knocked.len();
                out.set_broadcast_except(sender, base, knocked);
            } else {
                // Queued messages already own some of this sender's
                // links. Layer the base under them: each older message
                // keeps its link and the fresh copy slips to the next
                // round, exactly as if it had lost the link inside the
                // queue. Still one shared base — only the deferred
                // copies are cloned.
                self.conflicts.clear();
                out.merge_broadcast_except(sender, base, knocked, &mut self.conflicts);
                stats.delivered += n - 1 - knocked.len() - self.conflicts.len();
                if !self.conflicts.is_empty() {
                    stats.delayed += self.conflicts.len();
                    let copy = out
                        .broadcast_base(sender)
                        .expect("base installed above")
                        .clone();
                    self.queue
                        .push_group(round, round.index() + 1, sender, &self.conflicts, copy);
                }
            }
        }

        // Merge this round's surviving point-to-point messages.
        for &(s, r) in &self.fresh {
            let sender = NodeId::new(s);
            let receiver = NodeId::new(r);
            let m = wire
                .resolve_value(sender, receiver)
                .expect("fresh message vanished mid-round");
            match out.insert_if_vacant(sender, receiver, m) {
                None => stats.delivered += 1,
                Some(m) => {
                    stats.delayed += 1;
                    self.queue
                        .push(round, round.index() + 1, sender, receiver, m);
                }
            }
        }

        // The drained wire mailbox becomes next round's arrivals pool.
        self.pool = wire;
        (out, stats)
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{BoundedDelay, DelayScheduler, LossyLinks, Partition, Synchronous};
    use aba_sim::Emission;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn full_broadcast(n: usize) -> RoundMailbox<Tm> {
        let mut mb = RoundMailbox::new(n);
        for i in 0..n as u32 {
            mb.set(id(i), Emission::Broadcast(Tm(i as u8)));
        }
        mb
    }

    #[test]
    fn synchronous_fast_path_passes_wire_through() {
        let mut d: NetDelivery<Tm, _> = NetDelivery::new(Synchronous, 7);
        let ledger = CorruptionLedger::new(4, 0);
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(4), &ledger);
        assert_eq!(stats.delivered, 12);
        assert_eq!((stats.dropped, stats.delayed), (0, 0));
        // The broadcast structure is preserved (no per-recipient
        // expansion happened).
        assert!(out.is_broadcast(id(0)));
        assert_eq!(Delivery::<Tm>::in_flight(&d), 0);
    }

    #[test]
    fn total_loss_drops_everything_but_self_copies() {
        let mut d: NetDelivery<Tm, _> = NetDelivery::new(LossyLinks::new(1.0), 7);
        let ledger = CorruptionLedger::new(3, 0);
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(3), &ledger);
        assert_eq!(stats.dropped, 6);
        assert_eq!(stats.delivered, 0);
        // Every node still hears itself.
        for i in 0..3 {
            assert_eq!(out.resolve(id(i), id(i)), Some(&Tm(i as u8)));
            assert_eq!(out.inbox(id(i)).len(), 1);
        }
    }

    #[test]
    fn conservation_no_loss_no_duplication() {
        let mut d: NetDelivery<Tm, _> =
            NetDelivery::new(BoundedDelay::new(3, DelayScheduler::Random), 11);
        let ledger = CorruptionLedger::new(5, 0);
        let emitted_per_round = 20; // 5 broadcasts × 4 remote receivers
        let rounds = 8u64;
        let mut delivered_total = 0;
        for r in 0..rounds {
            let (_, stats) = d.deliver(Round::new(r), full_broadcast(5), &ledger);
            delivered_total += stats.delivered;
        }
        // Flush the tail: emit nothing, keep draining.
        for r in rounds..rounds + 8 {
            let (_, stats) = d.deliver(Round::new(r), RoundMailbox::new(5), &ledger);
            delivered_total += stats.delivered;
        }
        assert_eq!(Delivery::<Tm>::in_flight(&d), 0);
        assert_eq!(delivered_total, emitted_per_round * rounds as usize);
    }

    #[test]
    fn adversarial_scheduler_expedites_corrupted_senders() {
        let mut d: NetDelivery<Tm, _> =
            NetDelivery::new(BoundedDelay::new(2, DelayScheduler::DelayHonest), 3);
        let mut ledger = CorruptionLedger::new(3, 1);
        ledger.corrupt(id(0), Round::ZERO).unwrap();
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(3), &ledger);
        // Corrupted node 0's two messages arrive now; honest traffic
        // (4 messages) is held the full 2 rounds.
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.delayed, 4);
        assert_eq!(out.resolve(id(0), id(1)), Some(&Tm(0)));
        assert_eq!(out.resolve(id(1), id(2)), None);
        // Two rounds later the held messages land.
        let (_, s1) = d.deliver(Round::new(1), RoundMailbox::new(3), &ledger);
        assert_eq!(s1.delivered, 0);
        let (out2, s2) = d.deliver(Round::new(2), RoundMailbox::new(3), &ledger);
        assert_eq!(s2.delivered, 4);
        assert_eq!(out2.resolve(id(1), id(2)), Some(&Tm(1)));
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_heal() {
        let mut d: NetDelivery<Tm, _> = NetDelivery::new(Partition::striped(4, 2, 2), 5);
        let ledger = CorruptionLedger::new(4, 0);
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(4), &ledger);
        // Groups {0,2} and {1,3}: each node reaches 1 remote peer out of
        // 3, so 4 delivered and 8 dropped.
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.dropped, 8);
        assert_eq!(out.resolve(id(0), id(2)), Some(&Tm(0)));
        assert_eq!(out.resolve(id(0), id(1)), None);
        // Healed: transparent fast path, everything flows.
        let (_, healed) = d.deliver(Round::new(2), full_broadcast(4), &ledger);
        assert_eq!(healed.delivered, 12);
        assert_eq!(healed.dropped, 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| {
            let mut d: NetDelivery<Tm, _> = NetDelivery::new(LossyLinks::new(0.5), seed);
            let ledger = CorruptionLedger::new(6, 0);
            let mut sig = Vec::new();
            for r in 0..6 {
                let (out, stats) = d.deliver(Round::new(r), full_broadcast(6), &ledger);
                sig.push((stats, out.message_count()));
            }
            sig
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds explore different drops");
    }

    /// The arrivals mailbox of a surviving broadcast holds one shared
    /// row, not `n` per-recipient clones — the delivery stage's central
    /// memory-layout claim.
    #[test]
    fn surviving_broadcast_stays_shared_in_arrivals() {
        // p_drop = 0 routes every link (consuming RNG) but drops none.
        let mut d: NetDelivery<Tm, _> = NetDelivery::new(LossyLinks::new(0.0), 7);
        let ledger = CorruptionLedger::new(5, 0);
        let (out, stats) = d.deliver(Round::ZERO, full_broadcast(5), &ledger);
        assert_eq!(stats.delivered, 20);
        for s in 0..5 {
            assert!(out.is_broadcast(id(s)), "sender {s} row was expanded");
        }
    }

    /// An in-flight message that lands on a link a fresh broadcast also
    /// wants keeps the link (FIFO); the fresh copy slips one round.
    #[test]
    fn old_traffic_wins_the_link_fresh_broadcast_defers() {
        let mut d: NetDelivery<Tm, _> =
            NetDelivery::new(BoundedDelay::new(1, DelayScheduler::DelayHonest), 1);
        let ledger = CorruptionLedger::new(2, 0);
        // Round 0: honest broadcasts held 1 round.
        let (out0, s0) = d.deliver(Round::ZERO, full_broadcast(2), &ledger);
        assert_eq!(s0.delivered, 0);
        assert_eq!(s0.delayed, 2);
        assert_eq!(out0.resolve(id(0), id(1)), None);
        // Round 1: round-0 traffic is due now and wins both links; the
        // round-1 broadcasts are held again *and* their due copies must
        // queue behind the delivered ones.
        let (out1, s1) = d.deliver(Round::new(1), full_broadcast(2), &ledger);
        assert_eq!(s1.delivered, 2, "round-0 messages land");
        assert_eq!(out1.resolve(id(0), id(1)), Some(&Tm(0)));
        assert_eq!(Delivery::<Tm>::in_flight(&d), 2, "round-1 copies held");
        // Drain the tail with silent wires: the round-1 copies arrive.
        let (out2, s2) = d.deliver(Round::new(2), RoundMailbox::new(2), &ledger);
        assert_eq!(s2.delivered, 2);
        assert_eq!(out2.resolve(id(1), id(0)), Some(&Tm(1)));
    }
}
