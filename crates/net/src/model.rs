//! The per-message routing contract.
//!
//! A [`NetworkModel`] is the *policy* half of the delivery pipeline: for
//! every point-to-point message emitted in a round it chooses a [`Fate`]
//! — deliver now, delay by `d ≥ 1` rounds, or drop. The *mechanism* half
//! (expanding broadcasts, queueing delayed traffic, assembling the
//! arrivals mailbox) is [`crate::NetDelivery`], which drives the model.
//!
//! ## Contract
//!
//! * `route` is called once per directed link carrying a message, in
//!   ascending `(sender, receiver)` order within a round, rounds in
//!   order. Models draw randomness only from the RNG handed in (the
//!   engine's dedicated network stream), so a run remains a pure
//!   function of `(config, master seed)`.
//! * A node's local self-copy of its own broadcast never traverses the
//!   network and is never routed — no model can suppress it.
//! * `transparent(round)` returning `true` promises that *every* call to
//!   `route` in that round would return [`Fate::Deliver`] without
//!   consuming randomness; the driver uses it to skip per-message work
//!   (and, for [`crate::Synchronous`], to preserve bit-for-bit the
//!   pre-network engine behavior).

use aba_sim::{NodeId, Round};
use rand::RngCore;

/// One directed link carrying a message this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// The emitting node.
    pub sender: NodeId,
    /// The addressed node.
    pub receiver: NodeId,
    /// Whether the sender is (still) honest — adversarial schedulers
    /// discriminate honest traffic.
    pub sender_honest: bool,
}

/// The routing decision for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver in the emission round.
    Deliver,
    /// Hold for `d` rounds (a value of 0 is promoted to 1: a delayed
    /// message can never arrive before its emission round is over).
    Delay(u64),
    /// Destroy the message.
    Drop,
}

/// A deterministic, seed-reproducible network-condition model.
pub trait NetworkModel {
    /// Decides the fate of the message crossing `link` in `round`.
    ///
    /// Generic over the RNG so the per-edge draw inlines into the
    /// delivery loop (the `n²` calls per round made a `dyn RngCore`
    /// vtable hop measurable at large `n`); models that need dynamic
    /// dispatch can still take `&mut dyn RngCore` via `R = dyn RngCore`.
    fn route<R: RngCore + ?Sized>(&mut self, round: Round, link: Link, rng: &mut R) -> Fate;

    /// True if every message this round is delivered immediately and no
    /// randomness is consumed — the fast-path promise (see module docs).
    fn transparent(&self, _round: Round) -> bool {
        false
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysDrop;
    impl NetworkModel for AlwaysDrop {
        fn route<R: RngCore + ?Sized>(&mut self, _: Round, _: Link, _: &mut R) -> Fate {
            Fate::Drop
        }
        fn name(&self) -> &'static str {
            "always-drop"
        }
    }

    #[test]
    fn default_transparency_is_false() {
        assert!(!AlwaysDrop.transparent(Round::ZERO));
        assert_eq!(AlwaysDrop.name(), "always-drop");
    }
}
