//! The four shipped network-condition models.
//!
//! All models are deterministic given the engine's network RNG stream,
//! so any run — under any model — replays bit-for-bit from its master
//! seed.

use crate::model::{Fate, Link, NetworkModel};
use aba_sim::{NodeId, Round};
use rand::{Rng, RngCore};

/// The paper's lock-step synchronous network: every message is delivered
/// in its emission round. This is the default model and preserves the
/// pre-network engine behavior exactly (it is transparent every round,
/// so the driver never expands broadcasts or touches the RNG).
#[derive(Debug, Clone, Copy, Default)]
pub struct Synchronous;

impl NetworkModel for Synchronous {
    fn route<R: RngCore + ?Sized>(&mut self, _round: Round, _link: Link, _rng: &mut R) -> Fate {
        Fate::Deliver
    }

    fn transparent(&self, _round: Round) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "sync"
    }
}

/// Independent per-message loss: each directed message is destroyed with
/// probability `p_drop`. A broadcast may therefore reach only a subset
/// of the network — exactly the erasure behavior of unreliable links.
#[derive(Debug, Clone, Copy)]
pub struct LossyLinks {
    p_drop: f64,
    /// `ceil(p_drop * 2^53)`: the integer drop threshold. `gen_bool`
    /// compares a 53-bit draw scaled by `2^-53` against `p_drop`; both
    /// scalings are exact (powers of two), so `draw < p_drop * 2^53`
    /// over the integers decides the *same* fate from the *same* single
    /// `next_u64` — replays stay bit-identical while the per-edge hot
    /// path loses the int→float convert and multiply.
    drop_threshold: u64,
}

impl LossyLinks {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `p_drop` lies in `[0, 1]`.
    pub fn new(p_drop: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_drop),
            "p_drop must be a probability, got {p_drop}"
        );
        LossyLinks {
            p_drop,
            drop_threshold: (p_drop * (1u64 << 53) as f64).ceil() as u64,
        }
    }

    /// The per-message drop probability.
    pub fn p_drop(&self) -> f64 {
        self.p_drop
    }
}

impl NetworkModel for LossyLinks {
    fn route<R: RngCore + ?Sized>(&mut self, _round: Round, _link: Link, rng: &mut R) -> Fate {
        // Integer form of `rng.gen_bool(self.p_drop)` — same draw, same
        // fate (see `drop_threshold`).
        if (rng.next_u64() >> 11) < self.drop_threshold {
            Fate::Drop
        } else {
            Fate::Deliver
        }
    }

    fn transparent(&self, _round: Round) -> bool {
        // p_drop == 0.0 still consumes one RNG draw per message in
        // `route`, so only the exact zero case could be transparent;
        // keep it simple and never claim transparency.
        false
    }

    fn name(&self) -> &'static str {
        "lossy"
    }
}

/// How [`BoundedDelay`] picks each message's delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayScheduler {
    /// Uniform delay in `0..=max_delay` per message (0 = deliver now).
    Random,
    /// Worst-case scheduler: every honest-sent message is held the full
    /// `max_delay` rounds while corrupted senders' traffic arrives
    /// immediately — the adversarial scheduling of Lewko & Lewko, bounded
    /// by partial synchrony.
    DelayHonest,
}

/// Bounded-delay partial synchrony: every message arrives within
/// `max_delay` rounds of emission; the scheduler decides where in that
/// window.
#[derive(Debug, Clone, Copy)]
pub struct BoundedDelay {
    max_delay: u64,
    scheduler: DelayScheduler,
}

impl BoundedDelay {
    /// Creates the model. `max_delay == 0` degenerates to the
    /// synchronous network.
    pub fn new(max_delay: u64, scheduler: DelayScheduler) -> Self {
        BoundedDelay {
            max_delay,
            scheduler,
        }
    }

    /// The delay bound.
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }
}

impl NetworkModel for BoundedDelay {
    fn route<R: RngCore + ?Sized>(&mut self, _round: Round, link: Link, rng: &mut R) -> Fate {
        if self.max_delay == 0 {
            return Fate::Deliver;
        }
        let d = match self.scheduler {
            DelayScheduler::Random => rng.gen_range(0..=self.max_delay),
            DelayScheduler::DelayHonest => {
                if link.sender_honest {
                    self.max_delay
                } else {
                    0
                }
            }
        };
        if d == 0 {
            Fate::Deliver
        } else {
            Fate::Delay(d)
        }
    }

    fn transparent(&self, _round: Round) -> bool {
        self.max_delay == 0
    }

    fn name(&self) -> &'static str {
        match self.scheduler {
            DelayScheduler::Random => "bounded-delay",
            DelayScheduler::DelayHonest => "bounded-delay-adv",
        }
    }
}

/// A temporary network partition: until `heal_round`, messages crossing
/// group boundaries are dropped; from `heal_round` on, the network is
/// whole again. Nodes not assigned to any group are isolated (each in
/// its own singleton group).
#[derive(Debug, Clone)]
pub struct Partition {
    group_of: Vec<usize>,
    heal_round: u64,
}

impl Partition {
    /// Builds a partition from explicit groups over an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if any listed node is out of range or listed twice.
    pub fn from_groups(n: usize, groups: &[Vec<NodeId>], heal_round: u64) -> Self {
        // Unlisted nodes get singleton groups after the explicit ones.
        let mut group_of: Vec<usize> = (0..n).map(|i| groups.len() + i).collect();
        let mut seen = vec![false; n];
        for (g, members) in groups.iter().enumerate() {
            for id in members {
                assert!(id.index() < n, "node {id} out of range for n = {n}");
                assert!(!seen[id.index()], "node {id} listed in two groups");
                seen[id.index()] = true;
                group_of[id.index()] = g;
            }
        }
        Partition {
            group_of,
            heal_round,
        }
    }

    /// Builds a striped partition: node `i` joins group `i % groups`.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0`.
    pub fn striped(n: usize, groups: usize, heal_round: u64) -> Self {
        assert!(groups > 0, "need at least one group");
        Partition {
            group_of: (0..n).map(|i| i % groups).collect(),
            heal_round,
        }
    }

    /// The round from which the partition is healed.
    pub fn heal_round(&self) -> u64 {
        self.heal_round
    }

    /// Whether two nodes can talk in `round`.
    pub fn connected(&self, round: Round, a: NodeId, b: NodeId) -> bool {
        round.index() >= self.heal_round || self.group_of[a.index()] == self.group_of[b.index()]
    }
}

impl NetworkModel for Partition {
    fn route<R: RngCore + ?Sized>(&mut self, round: Round, link: Link, _rng: &mut R) -> Fate {
        if self.connected(round, link.sender, link.receiver) {
            Fate::Deliver
        } else {
            Fate::Drop
        }
    }

    fn transparent(&self, round: Round) -> bool {
        round.index() >= self.heal_round
    }

    fn name(&self) -> &'static str {
        "partition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::rng;

    fn link(s: u32, r: u32, honest: bool) -> Link {
        Link {
            sender: NodeId::new(s),
            receiver: NodeId::new(r),
            sender_honest: honest,
        }
    }

    #[test]
    fn synchronous_is_transparent_and_delivers() {
        let mut m = Synchronous;
        assert!(m.transparent(Round::ZERO));
        let mut r = rng::rng_for(0, rng::streams::NETWORK);
        assert_eq!(
            m.route(Round::ZERO, link(0, 1, true), &mut r),
            Fate::Deliver
        );
    }

    #[test]
    fn lossy_extremes() {
        let mut r = rng::rng_for(1, rng::streams::NETWORK);
        let mut never = LossyLinks::new(0.0);
        let mut always = LossyLinks::new(1.0);
        for i in 0..64 {
            assert_eq!(
                never.route(Round::ZERO, link(0, i, true), &mut r),
                Fate::Deliver
            );
            assert_eq!(
                always.route(Round::ZERO, link(0, i, true), &mut r),
                Fate::Drop
            );
        }
    }

    #[test]
    fn lossy_rate_is_roughly_p() {
        let mut m = LossyLinks::new(0.3);
        let mut r = rng::rng_for(2, rng::streams::NETWORK);
        let drops = (0..10_000)
            .filter(|_| m.route(Round::ZERO, link(0, 1, true), &mut r) == Fate::Drop)
            .count();
        assert!((2_700..3_300).contains(&drops), "drops = {drops}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_rejects_bad_probability() {
        let _ = LossyLinks::new(1.5);
    }

    #[test]
    fn bounded_delay_random_stays_in_window() {
        let mut m = BoundedDelay::new(3, DelayScheduler::Random);
        let mut r = rng::rng_for(3, rng::streams::NETWORK);
        let mut seen_delay = false;
        for _ in 0..256 {
            match m.route(Round::ZERO, link(0, 1, true), &mut r) {
                Fate::Deliver => {}
                Fate::Delay(d) => {
                    assert!((1..=3).contains(&d));
                    seen_delay = true;
                }
                Fate::Drop => panic!("bounded delay never drops"),
            }
        }
        assert!(seen_delay);
    }

    #[test]
    fn adversarial_scheduler_delays_honest_only() {
        let mut m = BoundedDelay::new(4, DelayScheduler::DelayHonest);
        let mut r = rng::rng_for(4, rng::streams::NETWORK);
        assert_eq!(
            m.route(Round::ZERO, link(0, 1, true), &mut r),
            Fate::Delay(4)
        );
        assert_eq!(
            m.route(Round::ZERO, link(2, 1, false), &mut r),
            Fate::Deliver
        );
    }

    #[test]
    fn zero_delay_bound_is_transparent() {
        let m = BoundedDelay::new(0, DelayScheduler::Random);
        assert!(m.transparent(Round::ZERO));
    }

    #[test]
    fn partition_splits_then_heals() {
        let mut m = Partition::striped(4, 2, 3);
        let mut r = rng::rng_for(5, rng::streams::NETWORK);
        // Groups: {0, 2} and {1, 3}.
        assert_eq!(
            m.route(Round::ZERO, link(0, 2, true), &mut r),
            Fate::Deliver
        );
        assert_eq!(m.route(Round::ZERO, link(0, 1, true), &mut r), Fate::Drop);
        assert!(!m.transparent(Round::new(2)));
        assert!(m.transparent(Round::new(3)));
        assert_eq!(
            m.route(Round::new(3), link(0, 1, true), &mut r),
            Fate::Deliver
        );
    }

    #[test]
    fn explicit_groups_isolate_unlisted_nodes() {
        let groups = vec![vec![NodeId::new(0), NodeId::new(1)]];
        let m = Partition::from_groups(4, &groups, 10);
        assert!(m.connected(Round::ZERO, NodeId::new(0), NodeId::new(1)));
        assert!(!m.connected(Round::ZERO, NodeId::new(2), NodeId::new(3)));
        assert!(!m.connected(Round::ZERO, NodeId::new(0), NodeId::new(2)));
        assert!(m.connected(Round::new(10), NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn duplicate_membership_panics() {
        let groups = vec![vec![NodeId::new(0)], vec![NodeId::new(0)]];
        let _ = Partition::from_groups(2, &groups, 0);
    }
}
