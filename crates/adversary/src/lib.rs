//! # aba-adversary — generic adversary strategies
//!
//! Strategies in this crate work against *any* protocol run on
//! [`aba_sim`]: they never inspect protocol-specific state, only the
//! message traffic and corruption bookkeeping the simulator exposes.
//! Protocol-aware attacks (the interesting ones for the paper's
//! experiments) live in `aba-attacks`.
//!
//! Provided strategies:
//!
//! * [`StaticByzantine`] — the classic *static* adversary: picks its `t`
//!   victims before round 0 and replays/garbles traffic; the baseline the
//!   paper contrasts the adaptive model against;
//! * [`AdaptiveCrash`] — adaptively crashes nodes on a schedule; the
//!   fault model of the Bar-Joseph–Ben-Or lower bound;
//! * [`RandomReplay`] — corrupted nodes echo a randomly chosen honest
//!   node's current-round message to each recipient independently (a
//!   cheap rushing equivocator that is protocol-agnostic);
//! * [`BudgetCapped`] — wraps any adversary and caps the corruptions it
//!   may perform at `q ≤ t`, for the paper's early-termination claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget_capped;
pub mod crash;
pub mod random_replay;
pub mod static_byz;

pub use budget_capped::BudgetCapped;
pub use crash::{AdaptiveCrash, CrashSchedule};
pub use random_replay::RandomReplay;
pub use static_byz::{StaticBehavior, StaticByzantine};

/// Re-export of the benign adversary for convenience.
pub use aba_sim::adversary::Benign;

/// Common imports for writing adversaries.
pub mod prelude {
    pub use crate::{
        AdaptiveCrash, Benign, BudgetCapped, CrashSchedule, RandomReplay, StaticBehavior,
        StaticByzantine,
    };
    pub use aba_sim::adversary::{Adversary, AdversaryAction, CorruptSend, RoundView};
}
