//! The static Byzantine adversary.
//!
//! The weakest adversary class the paper discusses (Section 1): the `t`
//! Byzantine nodes are fixed before the protocol starts, oblivious to the
//! execution. Comparing protocols under this adversary against the
//! adaptive attacks of `aba-attacks` reproduces the paper's motivation
//! that adaptivity is what makes the problem hard.

use aba_sim::adversary::{Adversary, AdversaryAction, CorruptSend, RoundView};
use aba_sim::{MessagePlane, NodeId, Protocol, Round};
use rand::{Rng, RngCore};

/// What the statically corrupted nodes do each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticBehavior {
    /// Say nothing (equivalent to crashing at round 0).
    Silence,
    /// Replay, to every node independently, the current-round message of a
    /// uniformly random honest node (equivocating noise). Requires the
    /// rushing view; degrades to silence without it.
    MirrorRandom,
}

/// Adversary that corrupts a fixed set of nodes at round 0 and then
/// follows [`StaticBehavior`] forever.
#[derive(Debug, Clone)]
pub struct StaticByzantine {
    victims: Vec<NodeId>,
    behavior: StaticBehavior,
}

impl StaticByzantine {
    /// Corrupts the `t` lowest-ID nodes.
    ///
    /// With ID-range committees this is also the *worst-case* static
    /// placement for the paper's protocol: it concentrates faults in the
    /// earliest committees.
    pub fn first_t(t: usize, behavior: StaticBehavior) -> Self {
        StaticByzantine {
            victims: (0..t as u32).map(NodeId::new).collect(),
            behavior,
        }
    }

    /// Corrupts an explicit set of nodes.
    pub fn of(victims: Vec<NodeId>, behavior: StaticBehavior) -> Self {
        StaticByzantine { victims, behavior }
    }

    /// Corrupts `t` nodes spread evenly across the ID space (one per
    /// stride), the *best-case* static placement for ID-range committees.
    pub fn spread(n: usize, t: usize, behavior: StaticBehavior) -> Self {
        let victims = if t == 0 {
            Vec::new()
        } else {
            (0..t).map(|i| NodeId::new((i * n / t) as u32)).collect()
        };
        StaticByzantine { victims, behavior }
    }

    /// The victim set.
    pub fn victims(&self) -> &[NodeId] {
        &self.victims
    }
}

impl<P: Protocol, L: MessagePlane<P::Msg>> Adversary<P, L> for StaticByzantine {
    fn act(
        &mut self,
        view: &RoundView<'_, P, L>,
        rng: &mut dyn RngCore,
    ) -> AdversaryAction<P::Msg> {
        let corruptions = if view.round == Round::ZERO {
            self.victims.clone()
        } else {
            Vec::new()
        };

        let sends = match self.behavior {
            StaticBehavior::Silence => Vec::new(),
            StaticBehavior::MirrorRandom => {
                let Some(mailbox) = view.outgoing else {
                    return AdversaryAction {
                        corruptions,
                        sends: Vec::new(),
                    };
                };
                // Pool of honest broadcasts to mirror.
                let honest_senders: Vec<NodeId> = (0..view.n())
                    .map(|i| NodeId::new(i as u32))
                    .filter(|id| {
                        !view.ledger.is_corrupted(*id)
                            && !self.victims.contains(id)
                            && !mailbox.is_silent(*id)
                    })
                    .collect();
                if honest_senders.is_empty() {
                    Vec::new()
                } else {
                    self.victims
                        .iter()
                        .map(|victim| {
                            let per_recipient: Vec<(NodeId, P::Msg)> = (0..view.n())
                                .filter_map(|recv| {
                                    let recv = NodeId::new(recv as u32);
                                    let src =
                                        honest_senders[rng.gen_range(0..honest_senders.len())];
                                    mailbox.resolve_value(src, recv).map(|m| (recv, m))
                                })
                                .collect();
                            (*victim, CorruptSend::PerRecipient(per_recipient))
                        })
                        .collect()
                }
            }
        };

        AdversaryAction { corruptions, sends }
    }

    fn name(&self) -> &'static str {
        match self.behavior {
            StaticBehavior::Silence => "static-silent",
            StaticBehavior::MirrorRandom => "static-mirror",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::prelude::*;
    use rand::RngCore;

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u32);
    impl Message for Num {
        fn bit_size(&self) -> usize {
            32
        }
    }

    #[derive(Debug)]
    struct CountNode {
        me: u32,
        rounds: u64,
        seen_last: usize,
        halted: bool,
    }
    impl Protocol for CountNode {
        type Msg = Num;
        fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Num> {
            Emission::Broadcast(Num(self.me))
        }
        fn receive(&mut self, r: Round, inbox: Inbox<'_, Num>, _rng: &mut dyn RngCore) {
            self.seen_last = inbox.len();
            if r.index() + 1 >= self.rounds {
                self.halted = true;
            }
        }
        fn output(&self) -> Option<bool> {
            self.halted.then_some(true)
        }
        fn halted(&self) -> bool {
            self.halted
        }
    }

    fn nodes(n: usize, rounds: u64) -> Vec<CountNode> {
        (0..n as u32)
            .map(|me| CountNode {
                me,
                rounds,
                seen_last: 0,
                halted: false,
            })
            .collect()
    }

    #[test]
    fn silent_static_removes_victims_traffic() {
        let adv = StaticByzantine::first_t(2, StaticBehavior::Silence);
        let report = Simulation::new(SimConfig::new(5, 2), nodes(5, 1), adv).run();
        assert_eq!(report.corruptions_used, 2);
        // Only 3 honest broadcast * 4 receivers = 12 messages.
        assert_eq!(report.metrics.total_messages, 12);
        assert!(!report.honest[0] && !report.honest[1] && report.honest[2]);
    }

    #[test]
    fn mirror_random_sends_plausible_traffic() {
        let adv = StaticByzantine::first_t(1, StaticBehavior::MirrorRandom);
        let report = Simulation::new(SimConfig::new(4, 1), nodes(4, 1), adv).run();
        // victim mirrors honest messages: 3 honest broadcasts (9) + up to 4
        // mirrored sends.
        assert!(report.metrics.total_messages > 9);
        assert!(report.all_halted);
    }

    #[test]
    fn mirror_degrades_to_silence_when_non_rushing() {
        let adv = StaticByzantine::first_t(1, StaticBehavior::MirrorRandom);
        let cfg = SimConfig::new(4, 1).with_info_model(InfoModel::NonRushing);
        let report = Simulation::new(cfg, nodes(4, 1), adv).run();
        assert_eq!(report.metrics.total_messages, 9);
    }

    #[test]
    fn spread_picks_distinct_strided_ids() {
        let adv = StaticByzantine::spread(12, 3, StaticBehavior::Silence);
        let idx: Vec<usize> = adv.victims().iter().map(|v| v.index()).collect();
        assert_eq!(idx, vec![0, 4, 8]);
        let none = StaticByzantine::spread(12, 0, StaticBehavior::Silence);
        assert!(none.victims().is_empty());
    }

    #[test]
    fn names_are_stable() {
        let a = StaticByzantine::first_t(1, StaticBehavior::Silence);
        let b = StaticByzantine::first_t(1, StaticBehavior::MirrorRandom);
        assert_eq!(Adversary::<CountNode>::name(&a), "static-silent");
        assert_eq!(Adversary::<CountNode>::name(&b), "static-mirror");
    }
}
