//! Budget-capping combinator.
//!
//! Theorem 2's early-termination clause: if the adversary only ever
//! corrupts `q < t` nodes, the protocol finishes in
//! `O(min{q² log n / n, q / log n})` rounds. To measure that (experiment
//! E6) we wrap a full-strength adversary and refuse to let it corrupt
//! more than `q` nodes, while the protocol still *believes* (and is
//! parameterized for) budget `t`.

use aba_sim::adversary::{Adversary, AdversaryAction, RoundView};
use aba_sim::{MessagePlane, Protocol};
use rand::RngCore;

/// Caps the corruptions of an inner adversary at `q`.
///
/// Sends on behalf of already-corrupted nodes are unaffected; corruption
/// requests beyond the cap are dropped (and any sends they would have
/// made from the not-corrupted nodes are filtered out too).
#[derive(Debug, Clone)]
pub struct BudgetCapped<A> {
    inner: A,
    cap: usize,
}

impl<A> BudgetCapped<A> {
    /// Wraps `inner`, allowing it at most `cap` corruptions in total.
    pub fn new(inner: A, cap: usize) -> Self {
        BudgetCapped { inner, cap }
    }

    /// The wrapped adversary.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The corruption cap `q`.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl<P: Protocol, L: MessagePlane<P::Msg>, A: Adversary<P, L>> Adversary<P, L> for BudgetCapped<A> {
    fn act(
        &mut self,
        view: &RoundView<'_, P, L>,
        rng: &mut dyn RngCore,
    ) -> AdversaryAction<P::Msg> {
        let mut action = self.inner.act(view, rng);
        let used = view.ledger.used();
        let allowed = self.cap.saturating_sub(used);
        if action.corruptions.len() > allowed {
            action.corruptions.truncate(allowed);
        }
        // Filter sends that now target nodes which stayed honest.
        action
            .sends
            .retain(|(id, _)| view.ledger.is_corrupted(*id) || action.corruptions.contains(id));
        action
    }

    fn name(&self) -> &'static str {
        "budget-capped"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::AdaptiveCrash;
    use aba_sim::prelude::*;
    use rand::RngCore;

    #[derive(Debug, Clone)]
    struct T;
    impl Message for T {
        fn bit_size(&self) -> usize {
            1
        }
    }

    #[derive(Debug)]
    struct N {
        halted: bool,
        deadline: u64,
    }
    impl Protocol for N {
        type Msg = T;
        fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<T> {
            Emission::Broadcast(T)
        }
        fn receive(&mut self, r: Round, _i: Inbox<'_, T>, _rng: &mut dyn RngCore) {
            if r.index() + 1 >= self.deadline {
                self.halted = true;
            }
        }
        fn output(&self) -> Option<bool> {
            self.halted.then_some(true)
        }
        fn halted(&self) -> bool {
            self.halted
        }
    }

    #[test]
    fn cap_limits_a_greedy_inner_adversary() {
        let nodes: Vec<N> = (0..10)
            .map(|_| N {
                halted: false,
                deadline: 6,
            })
            .collect();
        // Inner wants 3 crashes per round; budget t=8; cap q=4.
        let adv = BudgetCapped::new(AdaptiveCrash::steady(3), 4);
        let report = Simulation::new(SimConfig::new(10, 8), nodes, adv).run();
        assert_eq!(report.corruptions_used, 4);
    }

    #[test]
    fn zero_cap_means_benign() {
        let nodes: Vec<N> = (0..5)
            .map(|_| N {
                halted: false,
                deadline: 3,
            })
            .collect();
        let adv = BudgetCapped::new(AdaptiveCrash::steady(2), 0);
        let report = Simulation::new(SimConfig::new(5, 5), nodes, adv).run();
        assert_eq!(report.corruptions_used, 0);
        assert!(report.all_halted);
    }

    #[test]
    fn accessors_expose_inner_and_cap() {
        let adv = BudgetCapped::new(AdaptiveCrash::steady(1), 7);
        assert_eq!(adv.cap(), 7);
        let _: &AdaptiveCrash = adv.inner();
    }
}
