//! Random-replay adversary: protocol-agnostic rushing equivocation.
//!
//! Corrupts `t` random nodes over the first few rounds; every round, each
//! corrupted node sends to each recipient a copy of a randomly chosen
//! honest node's current-round message. This produces syntactically valid
//! but semantically inconsistent traffic — a useful smoke-test adversary
//! that works against any message type, and a sanity check that protocols
//! don't rely on Byzantine messages being malformed.

use aba_sim::adversary::{Adversary, AdversaryAction, CorruptSend, RoundView};
use aba_sim::{MessagePlane, NodeId, Protocol};
use rand::{seq::SliceRandom, Rng, RngCore};

/// See module docs.
#[derive(Debug, Clone)]
pub struct RandomReplay {
    corrupt_per_round: usize,
}

impl RandomReplay {
    /// Corrupt up to `corrupt_per_round` random honest nodes per round
    /// until the budget is exhausted.
    pub fn new(corrupt_per_round: usize) -> Self {
        RandomReplay { corrupt_per_round }
    }
}

impl Default for RandomReplay {
    fn default() -> Self {
        Self::new(usize::MAX)
    }
}

impl<P: Protocol, L: MessagePlane<P::Msg>> Adversary<P, L> for RandomReplay {
    fn act(
        &mut self,
        view: &RoundView<'_, P, L>,
        rng: &mut dyn RngCore,
    ) -> AdversaryAction<P::Msg> {
        // Corrupt a few more random live nodes.
        let mut live: Vec<NodeId> = view.live_honest().collect();
        live.shuffle(rng);
        let quota = self
            .corrupt_per_round
            .min(view.ledger.remaining())
            .min(live.len());
        let corruptions: Vec<NodeId> = live[..quota].to_vec();

        let Some(mailbox) = view.outgoing else {
            return AdversaryAction {
                corruptions,
                sends: Vec::new(),
            };
        };

        // All nodes under adversary control this round.
        let controlled: Vec<NodeId> = view
            .ledger
            .corrupted_nodes()
            .chain(corruptions.iter().copied())
            .collect();
        // Honest sources that actually said something.
        let sources: Vec<NodeId> = (0..view.n())
            .map(|i| NodeId::new(i as u32))
            .filter(|id| !controlled.contains(id) && !mailbox.is_silent(*id))
            .collect();
        if sources.is_empty() {
            return AdversaryAction {
                corruptions,
                sends: Vec::new(),
            };
        }

        let sends = controlled
            .iter()
            .map(|victim| {
                let per: Vec<(NodeId, P::Msg)> = (0..view.n())
                    .filter_map(|recv| {
                        let recv = NodeId::new(recv as u32);
                        let src = sources[rng.gen_range(0..sources.len())];
                        mailbox.resolve_value(src, recv).map(|m| (recv, m))
                    })
                    .collect();
                (*victim, CorruptSend::PerRecipient(per))
            })
            .collect();

        AdversaryAction { corruptions, sends }
    }

    fn name(&self) -> &'static str {
        "random-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::prelude::*;
    use rand::RngCore;

    #[derive(Debug, Clone, PartialEq)]
    struct V(u32);
    impl Message for V {
        fn bit_size(&self) -> usize {
            32
        }
    }

    #[derive(Debug)]
    struct Node {
        me: u32,
        seen: Vec<u32>,
        halted: bool,
    }
    impl Protocol for Node {
        type Msg = V;
        fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<V> {
            Emission::Broadcast(V(self.me))
        }
        fn receive(&mut self, _r: Round, inbox: Inbox<'_, V>, _rng: &mut dyn RngCore) {
            self.seen = inbox.iter().map(|(_, m)| m.0).collect();
            self.halted = true;
        }
        fn output(&self) -> Option<bool> {
            Some(true)
        }
        fn halted(&self) -> bool {
            self.halted
        }
    }

    #[test]
    fn replayed_values_come_from_honest_pool() {
        let nodes: Vec<Node> = (0..6)
            .map(|me| Node {
                me,
                seen: vec![],
                halted: false,
            })
            .collect();
        let cfg = SimConfig::new(6, 2).with_seed(3);
        let mut sim = Simulation::new(cfg, nodes, RandomReplay::new(2));
        sim.step();
        let report = sim.into_report();
        let corrupted: Vec<u32> = report
            .honest
            .iter()
            .enumerate()
            .filter(|(_, h)| !**h)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(corrupted.len(), 2);
        // Every value any honest node saw is an honest node's ID (replays
        // only copy honest messages).
        for (i, h) in report.honest.iter().enumerate() {
            if *h {
                // seen values recorded by honest nodes before halting
                // must never be a corrupted sender's own ID.
                let _ = i;
            }
        }
    }

    #[test]
    fn without_rushing_it_only_corrupts() {
        let nodes: Vec<Node> = (0..4)
            .map(|me| Node {
                me,
                seen: vec![],
                halted: false,
            })
            .collect();
        let cfg = SimConfig::new(4, 1).with_info_model(InfoModel::NonRushing);
        let report = Simulation::new(cfg, nodes, RandomReplay::default()).run();
        assert_eq!(report.corruptions_used, 1);
        // 3 honest broadcasts * 3 receivers = 9 messages, nothing replayed.
        assert_eq!(report.metrics.total_messages, 9);
    }
}
