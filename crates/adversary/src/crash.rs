//! Adaptive crash-fault adversary.
//!
//! Crash faults are the model in which Bar-Joseph and Ben-Or proved the
//! `Ω(t/√(n log n))` lower bound the paper compares against (Theorem 1):
//! a crashed node simply stops sending, possibly mid-round (here: from
//! the round of corruption onward, its messages are dropped entirely —
//! the harshest clean-cut variant). The *adaptive* part is the schedule:
//! the adversary chooses whom to crash and when, with full information.

use aba_sim::adversary::{Adversary, AdversaryAction, RoundView};
use aba_sim::{MessagePlane, NodeId, Protocol};
use rand::{seq::SliceRandom, RngCore};

/// When the crash adversary pulls the trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashSchedule {
    /// Crash `per_round` random live honest nodes every round until the
    /// budget runs out. Models steady attrition.
    Steady {
        /// Crashes per round.
        per_round: usize,
    },
    /// Crash everything the budget allows at one specific round. Models a
    /// coordinated mass failure at the worst moment.
    BigBang {
        /// The round at which all crashes happen.
        round: u64,
    },
    /// Crash one random node in each round in `from..to`.
    Window {
        /// First crashing round.
        from: u64,
        /// One past the last crashing round.
        to: u64,
    },
}

/// Adaptive crash adversary: crashed nodes go permanently silent.
#[derive(Debug, Clone)]
pub struct AdaptiveCrash {
    schedule: CrashSchedule,
}

impl AdaptiveCrash {
    /// Creates the adversary with a schedule.
    pub fn new(schedule: CrashSchedule) -> Self {
        AdaptiveCrash { schedule }
    }

    /// Steady attrition of `per_round` crashes per round.
    pub fn steady(per_round: usize) -> Self {
        Self::new(CrashSchedule::Steady { per_round })
    }

    fn pick<P: Protocol, L: MessagePlane<P::Msg>>(
        view: &RoundView<'_, P, L>,
        how_many: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let mut live: Vec<NodeId> = view.live_honest().collect();
        let quota = how_many.min(view.ledger.remaining()).min(live.len());
        live.shuffle(rng);
        live.truncate(quota);
        live
    }
}

impl<P: Protocol, L: MessagePlane<P::Msg>> Adversary<P, L> for AdaptiveCrash {
    fn act(
        &mut self,
        view: &RoundView<'_, P, L>,
        rng: &mut dyn RngCore,
    ) -> AdversaryAction<P::Msg> {
        let r = view.round.index();
        let corruptions = match self.schedule {
            CrashSchedule::Steady { per_round } => Self::pick(view, per_round, rng),
            CrashSchedule::BigBang { round } if r == round => {
                Self::pick(view, view.ledger.remaining(), rng)
            }
            CrashSchedule::BigBang { .. } => Vec::new(),
            CrashSchedule::Window { from, to } if r >= from && r < to => Self::pick(view, 1, rng),
            CrashSchedule::Window { .. } => Vec::new(),
        };
        // Crashed nodes send nothing: no `sends` entries means silence.
        AdversaryAction {
            corruptions,
            sends: Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        match self.schedule {
            CrashSchedule::Steady { .. } => "crash-steady",
            CrashSchedule::BigBang { .. } => "crash-bigbang",
            CrashSchedule::Window { .. } => "crash-window",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::prelude::*;
    use rand::RngCore;

    #[derive(Debug, Clone)]
    struct Tick;
    impl Message for Tick {
        fn bit_size(&self) -> usize {
            1
        }
    }

    #[derive(Debug)]
    struct Runner {
        rounds: u64,
        halted: bool,
    }
    impl Protocol for Runner {
        type Msg = Tick;
        fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Tick> {
            Emission::Broadcast(Tick)
        }
        fn receive(&mut self, r: Round, _inbox: Inbox<'_, Tick>, _rng: &mut dyn RngCore) {
            if r.index() + 1 >= self.rounds {
                self.halted = true;
            }
        }
        fn output(&self) -> Option<bool> {
            self.halted.then_some(true)
        }
        fn halted(&self) -> bool {
            self.halted
        }
    }

    fn nodes(n: usize, rounds: u64) -> Vec<Runner> {
        (0..n)
            .map(|_| Runner {
                rounds,
                halted: false,
            })
            .collect()
    }

    #[test]
    fn steady_crashes_respect_budget() {
        let report = Simulation::new(
            SimConfig::new(10, 3),
            nodes(10, 5),
            AdaptiveCrash::steady(2),
        )
        .run();
        assert_eq!(report.corruptions_used, 3, "2 in round 0, 1 in round 1");
        assert_eq!(report.honest.iter().filter(|h| !**h).count(), 3);
    }

    #[test]
    fn bigbang_crashes_all_at_once() {
        let adv = AdaptiveCrash::new(CrashSchedule::BigBang { round: 2 });
        let cfg = SimConfig::new(8, 4).with_trace(true);
        let report = Simulation::new(cfg, nodes(8, 6), adv).run();
        assert_eq!(report.corruptions_used, 4);
        for (round, _) in report.trace.corruptions() {
            assert_eq!(round.index(), 2);
        }
    }

    #[test]
    fn window_crashes_one_per_round() {
        let adv = AdaptiveCrash::new(CrashSchedule::Window { from: 1, to: 4 });
        let cfg = SimConfig::new(8, 8).with_trace(true);
        let report = Simulation::new(cfg, nodes(8, 6), adv).run();
        assert_eq!(report.corruptions_used, 3);
        let rounds: Vec<u64> = report.trace.corruptions().map(|(r, _)| r.index()).collect();
        assert_eq!(rounds, vec![1, 2, 3]);
    }

    #[test]
    fn crash_never_exceeds_live_nodes() {
        // Budget bigger than the network: must not panic.
        let report =
            Simulation::new(SimConfig::new(3, 3), nodes(3, 4), AdaptiveCrash::steady(10)).run();
        assert_eq!(report.corruptions_used, 3);
    }
}
