//! Every rule is proven live: it fires on its bad fixture, a
//! well-formed reasoned annotation silences it, and malformed or stale
//! annotations are themselves diagnostics.

use aba_lint::registry::{self, Registry};
use aba_lint::{lint_single, Diagnostic, FileKind};
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

/// The real stream ledger, so fixture `streams::X` references are
/// checked against the same registry CI uses.
fn ledger() -> Registry {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("../sim/src/rng.rs");
    let src = std::fs::read_to_string(&p).expect("ledger file readable");
    registry::extract(&src).expect("ledger parses")
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let reg = ledger();
    lint_single(
        &format!("crates/lint/tests/fixtures/{name}"),
        &fixture(name),
        "aba-fixture",
        FileKind::Lib,
        Some(&reg),
    )
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

/// Each rule fires on its fixture, and ONLY that rule fires — fixtures
/// stay minimal enough to pin scope.
#[test]
fn every_rule_fires_on_its_fixture() {
    for rule in [
        "hash-nondeterminism",
        "wall-clock-in-sim",
        "rng-stream-ledger",
        "float-determinism",
        "seam-bypass",
        "panic-hygiene",
    ] {
        let name = format!("{}_fires.rs", rule.replace('-', "_"));
        let diags = lint_fixture(&name);
        assert!(
            !diags.is_empty(),
            "{rule}: fixture {name} produced no findings"
        );
        assert!(
            diags.iter().all(|d| d.rule == rule),
            "{rule}: unexpected extra rules in {name}: {:?}",
            rules_of(&diags)
        );
    }
}

/// A reasoned allow silences each rule completely — no residual
/// findings, no unused-suppression noise.
#[test]
fn reasoned_allow_silences_each_rule() {
    for rule in [
        "hash-nondeterminism",
        "wall-clock-in-sim",
        "rng-stream-ledger",
        "float-determinism",
        "seam-bypass",
        "panic-hygiene",
    ] {
        let name = format!("{}_suppressed.rs", rule.replace('-', "_"));
        let diags = lint_fixture(&name);
        assert!(
            diags.is_empty(),
            "{rule}: suppressed fixture {name} still reports {:?}",
            rules_of(&diags)
        );
    }
}

/// The packed message plane is held to the same seam rule as the dense
/// one: constructing a `PackedMailbox` or calling its mutators outside
/// aba-sim/aba-net fires, and nothing else does.
#[test]
fn seam_bypass_covers_the_packed_plane() {
    let diags = lint_fixture("seam_bypass_packed_fires.rs");
    assert!(
        diags.iter().any(|d| d.msg.contains("PackedMailbox")),
        "packed construction not reported: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.msg.contains("set_broadcast_except"))
            && diags.iter().any(|d| d.msg.contains("take_broadcast")),
        "packed mutators not reported: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.rule == "seam-bypass"),
        "unexpected extra rules: {:?}",
        rules_of(&diags)
    );
}

/// The adjacency-list sparse plane is held to the same seam rule as
/// the dense and packed ones: constructing a `SparseMailbox` or calling
/// its mutators outside aba-sim/aba-net fires, and nothing else does.
#[test]
fn seam_bypass_covers_the_sparse_plane() {
    let diags = lint_fixture("seam_bypass_sparse_fires.rs");
    assert!(
        diags.iter().any(|d| d.msg.contains("SparseMailbox")),
        "sparse construction not reported: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.msg.contains("merge_broadcast_except"))
            && diags.iter().any(|d| d.msg.contains("insert_if_vacant")),
        "sparse mutators not reported: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.rule == "seam-bypass"),
        "unexpected extra rules: {:?}",
        rules_of(&diags)
    );
}

/// The provenance seam is held to the same rule as the message planes:
/// constructing an `ArrivalScan` or calling its recording mutators
/// outside aba-sim/aba-net fires, and nothing else does.
#[test]
fn seam_bypass_covers_the_arrival_scan() {
    let diags = lint_fixture("seam_bypass_arrivals_fires.rs");
    assert!(
        diags.iter().any(|d| d.msg.contains("ArrivalScan")),
        "arrival-scan construction not reported: {diags:?}"
    );
    for mutator in ["mark_base", "add_sent", "set_corrupted"] {
        assert!(
            diags.iter().any(|d| d.msg.contains(mutator)),
            "arrival mutator `{mutator}` not reported: {diags:?}"
        );
    }
    assert!(
        diags.iter().all(|d| d.rule == "seam-bypass"),
        "unexpected extra rules: {:?}",
        rules_of(&diags)
    );
}

/// The rng fixture exercises both ledger checks: raw construction and
/// an undeclared stream reference.
#[test]
fn rng_fixture_catches_undeclared_stream() {
    let diags = lint_fixture("rng_stream_ledger_fires.rs");
    assert!(
        diags.iter().any(|d| d.msg.contains("SIDE_CHANNEL")),
        "undeclared stream not reported: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.msg.contains("raw RNG construction")),
        "raw seeding not reported: {diags:?}"
    );
}

/// An allow without a reason is rejected, and the finding it meant to
/// cover still fires.
#[test]
fn allow_without_reason_is_a_diagnostic() {
    let diags = lint_fixture("suppression_missing_reason.rs");
    assert!(
        diags.iter().any(|d| d.rule == "bad-suppression"),
        "missing-reason allow not flagged: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == "hash-nondeterminism"),
        "malformed allow must not suppress: {diags:?}"
    );
}

/// An allow that matches nothing is reported as stale.
#[test]
fn stale_allow_is_a_diagnostic() {
    let diags = lint_fixture("suppression_unused.rs");
    assert_eq!(rules_of(&diags), vec!["unused-suppression"], "{diags:?}");
}

/// Without a registry (ledger unavailable), the stream-reference check
/// degrades gracefully; the raw-seeding checks still run.
#[test]
fn missing_registry_degrades_gracefully() {
    let diags = lint_single(
        "crates/lint/tests/fixtures/rng_stream_ledger_fires.rs",
        &fixture("rng_stream_ledger_fires.rs"),
        "aba-fixture",
        FileKind::Lib,
        None,
    );
    assert!(diags.iter().all(|d| d.rule == "rng-stream-ledger"));
    assert!(diags.iter().any(|d| d.msg.contains("raw RNG construction")));
    assert!(!diags.iter().any(|d| d.msg.contains("SIDE_CHANNEL")));
}
