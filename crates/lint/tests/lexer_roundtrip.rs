//! Differential test: lexing any workspace file and concatenating the
//! token texts must reproduce the source byte-for-byte. Run over every
//! Rust file in the repository, this pins the lexer against the full
//! variety of syntax the rules will ever see.

use aba_lint::lexer::lex;
use aba_lint::source::collect_workspace;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn every_workspace_file_roundtrips() {
    let files = collect_workspace(workspace_root()).expect("workspace walk");
    assert!(
        files.len() > 40,
        "suspiciously few files ({}) — walk broken?",
        files.len()
    );
    for f in &files {
        let src = std::fs::read_to_string(&f.abs).expect("readable");
        let tokens = lex(&src);
        let mut rebuilt = String::with_capacity(src.len());
        for t in &tokens {
            rebuilt.push_str(t.text(&src));
        }
        assert_eq!(rebuilt, src, "round-trip mismatch in {}", f.rel);
        // Token spans tile the file: contiguous, in order, no gaps.
        let mut pos = 0usize;
        for t in &tokens {
            assert_eq!(t.start, pos, "gap/overlap at byte {pos} in {}", f.rel);
            assert!(t.end > t.start, "empty token at byte {pos} in {}", f.rel);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "trailing bytes unlexed in {}", f.rel);
    }
}

/// Line numbers are consistent with the newline count of everything
/// lexed before each token.
#[test]
fn line_numbers_match_newline_counts() {
    let files = collect_workspace(workspace_root()).expect("workspace walk");
    for f in files.iter().take(20) {
        let src = std::fs::read_to_string(&f.abs).expect("readable");
        for t in lex(&src) {
            let expected = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
            assert_eq!(
                t.line, expected,
                "line drift in {} at byte {}",
                f.rel, t.start
            );
        }
    }
}
