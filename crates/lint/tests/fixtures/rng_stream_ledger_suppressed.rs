//! Fixture: the same raw construction, acknowledged with a reasoned allow.

pub fn fresh_rng(seed: u64) -> SmallRng {
    // aba-lint: allow(rng-stream-ledger) — fixture: compat shim mirroring the upstream constructor
    SmallRng::seed_from_u64(seed)
}
