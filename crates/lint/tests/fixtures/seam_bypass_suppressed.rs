//! Fixture: the same mailbox mutation, acknowledged with reasoned allows.

pub fn forge() -> RoundMailbox {
    // aba-lint: allow(seam-bypass) — fixture: replay adapter reconstructing recorded wire state
    let mut wire = RoundMailbox::new(8);
    // aba-lint: allow(seam-bypass) — fixture: replay adapter reconstructing recorded wire state
    wire.knock_out(3);
    wire
}
