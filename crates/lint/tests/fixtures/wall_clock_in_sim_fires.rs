//! Fixture: a wall-clock read in library code.

pub fn trial_nanos() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
