//! Fixture: an allow that matches no finding is a stale annotation.

pub fn quiet() -> u64 {
    // aba-lint: allow(seam-bypass) — fixture: stale annotation with nothing left to cover
    7
}
