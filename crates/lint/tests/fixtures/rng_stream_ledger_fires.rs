//! Fixture: RNG construction that bypasses the stream ledger, plus a
//! reference to a stream the ledger never declared.

pub fn fresh_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

pub fn side_stream() -> u64 {
    streams::SIDE_CHANNEL
}
