//! Fixture: an allow without a reason is itself a diagnostic.

pub fn tally(votes: &[u64]) -> usize {
    // aba-lint: allow(hash-nondeterminism)
    let mut seen = std::collections::HashSet::new();
    for v in votes {
        seen.insert(*v);
    }
    seen.len()
}
