//! Fixture: arrival-scan construction and recording outside the engine
//! seam — causal provenance is recorded by aba-sim and *read* by
//! probes; fabricating a scan in analysis code bypasses that boundary.

pub fn forge_arrivals() -> ArrivalScan {
    let mut scan = ArrivalScan::new();
    scan.mark_base(0, 8);
    scan.add_sent(0, 1, 8);
    scan.set_corrupted(&[true]);
    scan
}
