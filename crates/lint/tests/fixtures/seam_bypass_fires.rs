//! Fixture: mailbox construction and mutation outside the delivery seam.

pub fn forge() -> RoundMailbox {
    let mut wire = RoundMailbox::new(8);
    wire.knock_out(3);
    wire
}
