//! Fixture: adjacency-list sparse mailbox construction and mutation
//! outside the delivery seam — the sparse plane is held to the same
//! rule as the dense and packed ones.

pub fn forge_sparse() -> SparseMailbox<u8> {
    let mut wire = SparseMailbox::new(64);
    wire.merge_broadcast_except(0, 1, &[3], &mut Vec::new());
    wire.insert_if_vacant(0, 1, 2);
    wire
}
