//! Fixture: the same float sites, acknowledged with reasoned allows.

pub fn sort_scores(xs: &mut [f64]) {
    // aba-lint: allow(float-determinism) — fixture: display-only ordering that never reaches artifacts
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn narrow(x: f64) -> f32 {
    // aba-lint: allow(float-determinism) — fixture: intentional narrowing documented at the site
    x as f32
}
