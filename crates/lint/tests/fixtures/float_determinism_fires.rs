//! Fixture: a partial_cmp float sort and a narrowing cast on a
//! library path.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn narrow(x: f64) -> f32 {
    x as f32
}
