//! Fixture: hash-order iteration on a result path. Never compiled —
//! linted by tests/rules.rs and the CI negative control.

pub fn tally(votes: &[u64]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for v in votes {
        seen.insert(*v);
    }
    seen.len()
}
