//! Fixture: a panic site with no budget to cover it (`--single` pins
//! the budget at zero).

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
