//! Fixture: the same panic site, acknowledged with a reasoned allow.

pub fn head(xs: &[u64]) -> u64 {
    // aba-lint: allow(panic-hygiene) — fixture: non-empty input is a documented caller invariant
    *xs.first().unwrap()
}
