//! Fixture: the same clock read, acknowledged with a reasoned allow.

pub fn trial_nanos() -> u128 {
    // aba-lint: allow(wall-clock-in-sim) — fixture: harness-side timing that never reaches results
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
