//! Fixture: bit-packed mailbox construction and mutation outside the
//! delivery seam — the packed plane is held to the same rule as the
//! dense one.

pub fn forge_packed() -> PackedMailbox {
    let mut wire = PackedMailbox::new(64);
    wire.set_broadcast_except(0, 1, &[3]);
    wire.take_broadcast(0);
    wire
}
