//! Fixture: the same hash-set use, acknowledged with a reasoned allow.

pub fn tally(votes: &[u64]) -> usize {
    // aba-lint: allow(hash-nondeterminism) — fixture: membership count only, order never read
    let mut seen = std::collections::HashSet::new();
    for v in votes {
        seen.insert(*v);
    }
    seen.len()
}
