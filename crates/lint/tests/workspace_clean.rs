//! The workspace's own lint gate, as a test: the repository must be
//! finding-free, and the full pass must stay fast enough to sit in CI
//! ahead of the test matrix.

use aba_lint::lint_workspace;
use std::path::Path;

#[test]
#[allow(clippy::disallowed_methods)] // timing the lint pass itself is the point
fn workspace_is_lint_clean() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let t0 = std::time::Instant::now();
    let diags = lint_workspace(root).expect("workspace walk");
    let elapsed = t0.elapsed();
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        elapsed.as_secs() < 5,
        "full lint pass took {elapsed:?}; the CI gate budget is 5s"
    );
}
