//! CLI for the workspace determinism linter.
//!
//! ```text
//! aba-lint [--root DIR]              lint the whole workspace
//! aba-lint --single FILE [FILE..]    lint files as result-affecting lib
//!                                    code (fixtures / negative control)
//! aba-lint --pin-panic-budget        regenerate the panic budget file
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use aba_lint::{engine, lint_single, lint_workspace, FileKind};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut singles: Vec<PathBuf> = Vec::new();
    let mut pin = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--single" => {
                singles.extend(args.by_ref().map(PathBuf::from));
            }
            "--pin-panic-budget" => pin = true,
            "--help" | "-h" => {
                println!(
                    "aba-lint: workspace determinism linter\n\
                     usage: aba-lint [--root DIR] [--single FILE..] [--pin-panic-budget]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if pin {
        return match engine::pin_panic_budget(&root) {
            Ok(body) => {
                let path = root.join(engine::PANIC_BUDGET_PATH);
                match std::fs::write(&path, body) {
                    Ok(()) => {
                        eprintln!("pinned panic budget at {}", path.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(&format!("writing {}: {e}", path.display())),
                }
            }
            Err(e) => fail(&format!("scanning workspace: {e}")),
        };
    }
    if !singles.is_empty() {
        // Fixture mode: strictest scope (result-affecting lib code, no
        // budget), with the real ledger when the workspace is present.
        let ledger = std::fs::read_to_string(root.join(engine::LEDGER_PATH))
            .ok()
            .and_then(|src| aba_lint::registry::extract(&src).ok());
        let mut n = 0usize;
        for path in &singles {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => return fail(&format!("reading {}: {e}", path.display())),
            };
            let rel = path.to_string_lossy().replace('\\', "/");
            for d in lint_single(&rel, &src, "aba-fixture", FileKind::Lib, ledger.as_ref()) {
                println!("{d}");
                n += 1;
            }
        }
        return verdict(n);
    }
    match lint_workspace(&root) {
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            verdict(diags.len())
        }
        Err(e) => fail(&format!("linting workspace: {e}")),
    }
}

fn verdict(findings: usize) -> ExitCode {
    if findings == 0 {
        eprintln!("aba-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("aba-lint: {findings} finding(s)");
        ExitCode::from(1)
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!(
        "aba-lint: {why}\nusage: aba-lint [--root DIR] [--single FILE..] [--pin-panic-budget]"
    );
    ExitCode::from(2)
}

fn fail(why: &str) -> ExitCode {
    eprintln!("aba-lint: {why}");
    ExitCode::from(2)
}
