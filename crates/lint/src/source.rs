//! Workspace file discovery and per-file context classification.
//!
//! Rules are scoped by *crate* (which package owns the file) and by
//! *kind* (library, binary, test, bench, example), plus by
//! `#[cfg(test)]` regions inside library files. All of that is derived
//! mechanically here so rule code can ask "is this line engine code?"
//! without re-deriving path conventions.

use crate::lexer::Token;
use std::io;
use std::path::{Path, PathBuf};

/// What role a file plays in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` library code (result-affecting unless in `#[cfg(test)]`).
    Lib,
    /// `src/bin/**` or `src/main.rs` — a CLI entry point.
    Bin,
    /// `tests/**` integration tests.
    Test,
    /// `benches/**` timing harnesses.
    Bench,
    /// `examples/**` demo programs.
    Example,
}

/// One discovered workspace source file.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with `/` separators (diagnostic key).
    pub rel: String,
    /// Owning package name from the nearest `Cargo.toml`.
    pub crate_name: String,
    /// Role of the file within its crate.
    pub kind: FileKind,
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "node_modules"];

/// Fixture sources are lint-rule test vectors, not workspace code.
const FIXTURE_DIR: &str = "crates/lint/tests/fixtures";

/// Collects every `.rs` file of the workspace rooted at `root`, sorted
/// by relative path for stable diagnostics.
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<WorkspaceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<WorkspaceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<Vec<_>>>()?;
    entries.sort();
    for path in entries {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            if rel_of(root, &path) == FIXTURE_DIR {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_of(root, &path);
            if let Some((crate_name, kind)) = classify(root, &path, &rel) {
                out.push(WorkspaceFile {
                    abs: path.clone(),
                    rel,
                    crate_name,
                    kind,
                });
            }
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Determines (crate, kind) from the path, or `None` for files outside
/// any recognized crate layout (e.g. stray scripts).
fn classify(root: &Path, abs: &Path, rel: &str) -> Option<(String, FileKind)> {
    // Find the nearest ancestor directory holding a Cargo.toml.
    let mut dir = abs.parent()?;
    let manifest = loop {
        let candidate = dir.join("Cargo.toml");
        if candidate.is_file() {
            break candidate;
        }
        if dir == root {
            return None;
        }
        dir = dir.parent()?;
    };
    let crate_name = package_name(&manifest)?;
    let crate_rel = rel_of(root, dir);
    let inside = if crate_rel.is_empty() {
        rel.to_string()
    } else {
        rel.strip_prefix(&format!("{crate_rel}/"))?.to_string()
    };
    let kind = if inside.starts_with("src/bin/") || inside == "src/main.rs" {
        FileKind::Bin
    } else if inside.starts_with("src/") {
        FileKind::Lib
    } else if inside.starts_with("tests/") {
        FileKind::Test
    } else if inside.starts_with("benches/") {
        FileKind::Bench
    } else if inside.starts_with("examples/") {
        FileKind::Example
    } else {
        return None;
    };
    Some((crate_name, kind))
}

/// Extracts `name = "…"` from a `[package]` manifest (hand-rolled —
/// the linter has no TOML dependency by design).
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items, computed
/// from the token stream.
///
/// The scan recognizes `#[cfg(test)]` (and `cfg(all(test, …))` etc. —
/// any cfg attribute mentioning `test` without `not`), skips any
/// further attributes, then brace-matches the annotated item's body.
/// An inner `#![cfg(test)]` marks the whole file.
pub fn test_regions(src: &str, tokens: &[Token]) -> TestRegions {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_trivia()).collect();
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut whole_file = false;
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].text(src) != "#" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < sig.len() && sig[j].text(src) == "!";
        if inner {
            j += 1;
        }
        if j >= sig.len() || sig[j].text(src) != "[" {
            i += 1;
            continue;
        }
        let (attr_end, is_test_cfg) = scan_attribute(src, &sig, j);
        if !is_test_cfg {
            i = attr_end;
            continue;
        }
        if inner {
            whole_file = true;
            i = attr_end;
            continue;
        }
        // Skip any further outer attributes between the cfg and the item.
        let mut k = attr_end;
        while k + 1 < sig.len() && sig[k].text(src) == "#" && sig[k + 1].text(src) == "[" {
            let (end, _) = scan_attribute(src, &sig, k + 1);
            k = end;
        }
        // Find the item body: first `{` at zero paren/bracket depth, or a
        // `;` ending a body-less item.
        let mut depth = 0i32;
        let mut end_line = sig[i].line;
        while k < sig.len() {
            let t = sig[k].text(src);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    end_line = sig[k].line;
                    k += 1;
                    break;
                }
                "{" if depth == 0 => {
                    let close = match_braces(src, &sig, k);
                    end_line = sig[close.min(sig.len() - 1)].line;
                    k = close + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((sig[i].line, end_line));
        i = k;
    }
    TestRegions {
        whole_file,
        regions,
    }
}

/// Scans an attribute whose `[` sits at `sig[open]`; returns the index
/// just past the closing `]` and whether it is a test-selecting cfg.
fn scan_attribute(src: &str, sig: &[&Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut k = open;
    while k < sig.len() {
        let t = sig[k].text(src);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, saw_cfg && saw_test && !saw_not);
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            "not" => saw_not = true,
            _ => {}
        }
        k += 1;
    }
    (k, false)
}

/// Index of the `}` matching the `{` at `sig[open]` (or the last token
/// for unbalanced input).
fn match_braces(src: &str, sig: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < sig.len() {
        match sig[k].text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    sig.len().saturating_sub(1)
}

/// The `#[cfg(test)]` coverage of one file.
#[derive(Debug, Clone, Default)]
pub struct TestRegions {
    /// Whole file is test-gated (`#![cfg(test)]`).
    pub whole_file: bool,
    /// Inclusive line ranges of test-gated items.
    pub regions: Vec<(u32, u32)>,
}

impl TestRegions {
    /// Whether `line` is inside test-gated code.
    pub fn contains(&self, line: u32) -> bool {
        self.whole_file || self.regions.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "pub fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\npub fn also_live() {}\n";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert!(!regions.contains(1));
        assert!(regions.contains(3));
        assert!(regions.contains(5));
        assert!(regions.contains(6));
        assert!(!regions.contains(7));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod_only() {}\n";
        let toks = lex(src);
        assert!(!test_regions(src, &toks).contains(2));
    }

    #[test]
    fn attributes_between_cfg_and_item_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    const X: u8 = 0;\n}\n";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert!(regions.contains(4));
    }

    #[test]
    fn fn_headers_with_parens_do_not_confuse_body_search() {
        let src = "#[cfg(test)]\nfn f(a: (u8, u8), b: [u8; 2]) -> bool {\n    a.0 == b[0]\n}\nfn live() {}\n";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert!(regions.contains(3));
        assert!(!regions.contains(5));
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() {}\n";
        let toks = lex(src);
        assert!(test_regions(src, &toks).contains(2));
    }
}
