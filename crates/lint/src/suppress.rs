//! Inline suppression comments.
//!
//! A finding can be acknowledged in place with a comment of the form
//! (marker, `allow`, a parenthesized rule list, a separator, and a
//! mandatory free-text reason):
//!
//! ```text
//! (slash-slash) aba-lint: allow(rule-id) - why this site is exempt
//! ```
//!
//! Accepted separators between the rule list and the reason are an
//! em/en dash, `--`, `-`, or `:`. The reason is not optional: an allow
//! without one is itself a diagnostic, and so is an allow that no
//! longer matches any finding — annotations must stay live
//! documentation, not fossils.

use crate::lexer::Token;
use crate::rules::RULE_IDS;

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on; it covers this line and the next.
    pub line: u32,
    /// Rules the comment allows.
    pub rules: Vec<String>,
    /// Whether any diagnostic consumed this suppression.
    pub used: bool,
}

/// A malformed suppression attempt (reported as `bad-suppression`).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub why: String,
}

/// The marker that opens a suppression comment.
const MARKER: &str = "aba-lint:";

/// Extracts all (well- and mal-formed) suppressions from the comment
/// tokens of a file.
pub fn parse(src: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for t in tokens.iter().filter(|t| t.kind.is_comment()) {
        // A suppression is a comment whose *content* starts with the
        // marker; prose that merely mentions the marker is ignored.
        let content = t.text(src).trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix(MARKER) else {
            continue;
        };
        match parse_body(rest) {
            Ok(rules) => ok.push(Suppression {
                line: t.line,
                rules,
                used: false,
            }),
            Err(why) => bad.push(BadSuppression { line: t.line, why }),
        }
    }
    (ok, bad)
}

/// Parses `allow(rule[, rule]*) <sep> <reason>` after the marker.
fn parse_body(rest: &str) -> Result<Vec<String>, String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Err("expected `allow(<rule>)` after the marker".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule list".to_string());
    };
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let rule = raw.trim();
        if rule.is_empty() {
            return Err("empty rule name in allow list".to_string());
        }
        if !RULE_IDS.contains(&rule) {
            return Err(format!("unknown rule `{rule}`"));
        }
        rules.push(rule.to_string());
    }
    let after = rest[close + 1..].trim_start();
    let reason = ["\u{2014}", "\u{2013}", "--", "-", ":"]
        .iter()
        .find_map(|sep| after.strip_prefix(sep));
    let Some(reason) = reason else {
        return Err("missing separator before the reason".to_string());
    };
    let reason = reason.trim_end_matches("*/").trim();
    if reason.len() < 3 {
        return Err("a non-empty reason is mandatory".to_string());
    }
    Ok(rules)
}

/// Marks a matching suppression used and reports whether `rule` at
/// `line` is covered. A suppression on line L covers findings on L
/// (trailing comment) and L+1 (comment on its own line).
pub fn covers(sups: &mut [Suppression], rule: &str, line: u32) -> bool {
    for s in sups.iter_mut() {
        if (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule) {
            s.used = true;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Vec<Suppression>, Vec<BadSuppression>) {
        let toks = lex(src);
        parse(src, &toks)
    }

    #[test]
    fn well_formed_suppression_parses() {
        let src = "// aba-lint: allow(hash-nondeterminism) \u{2014} membership only, order never read\nuse std::collections::HashSet;\n";
        let (ok, bad) = parse_src(src);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rules, vec!["hash-nondeterminism"]);
        assert_eq!(ok[0].line, 1);
    }

    #[test]
    fn ascii_separators_accepted() {
        for sep in ["--", "-", ":"] {
            let src = format!("// aba-lint: allow(panic-hygiene) {sep} startup-only invariant\n");
            let (ok, bad) = parse_src(&src);
            assert!(bad.is_empty(), "sep {sep}: {bad:?}");
            assert_eq!(ok.len(), 1, "sep {sep}");
        }
    }

    #[test]
    fn reason_is_mandatory() {
        let (ok, bad) = parse_src("// aba-lint: allow(hash-nondeterminism)\n");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].why.contains("separator"), "{}", bad[0].why);
        let (ok2, bad2) = parse_src("// aba-lint: allow(hash-nondeterminism) \u{2014}  \n");
        assert!(ok2.is_empty());
        assert_eq!(bad2.len(), 1);
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let (ok, bad) = parse_src("// aba-lint: allow(no-such-rule) \u{2014} reason text\n");
        assert!(ok.is_empty());
        assert!(bad[0].why.contains("unknown rule"));
    }

    #[test]
    fn multi_rule_allow_and_coverage() {
        let src =
            "// aba-lint: allow(hash-nondeterminism, float-determinism) \u{2014} test vector\nlet x = 1;\n";
        let (mut ok, bad) = parse_src(src);
        assert!(bad.is_empty());
        assert!(covers(&mut ok, "float-determinism", 2));
        assert!(covers(&mut ok, "hash-nondeterminism", 1));
        assert!(!covers(&mut ok, "seam-bypass", 2));
        assert!(ok[0].used);
    }
}
