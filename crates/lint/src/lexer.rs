//! Hand-rolled Rust lexer: a trivia-preserving token stream, no parse.
//!
//! The linter's rules only need identifiers, literals, punctuation, and
//! comments with accurate line numbers — not a syntax tree. The lexer
//! therefore emits *every* byte of the input as part of some token
//! (whitespace and comments are tokens too), which gives a mechanical
//! correctness check: concatenating the token texts must reproduce the
//! file byte for byte. A differential test pins that round-trip over
//! the whole workspace.
//!
//! Handled surface: line comments, nested block comments, string
//! literals with escapes, raw strings with arbitrary `#` fences, byte
//! and raw-byte strings, char vs byte-char literals, the char-literal /
//! lifetime ambiguity, raw identifiers, and numeric literals with
//! underscores, base prefixes, exponents, and type suffixes. Anything
//! unrecognized falls back to a one-character `Punct` token, which
//! keeps the stream total and the round-trip exact.

/// Classification of one source token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (including newlines).
    Whitespace,
    /// `// ...` up to (not including) the newline.
    LineComment,
    /// `/* ... */`, nesting-aware.
    BlockComment,
    /// An identifier or keyword.
    Ident,
    /// A raw identifier: `r#ident`.
    RawIdent,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// A char literal: `'x'`, `'\n'`, `'\u{7fff}'`.
    CharLit,
    /// A byte-char literal: `b'x'`.
    ByteLit,
    /// A normal string literal, escapes handled.
    StrLit,
    /// A raw string literal: `r"…"`, `r#"…"#`, any fence depth.
    RawStrLit,
    /// A byte or raw-byte string literal: `b"…"`, `br#"…"#`.
    ByteStrLit,
    /// A numeric literal, including suffix: `1_000u64`, `0xFF`, `1.5e-3`.
    NumLit,
    /// A single punctuation character (or unrecognized byte/char).
    Punct,
}

impl TokenKind {
    /// Whether the token carries no semantic weight for rules
    /// (whitespace and comments).
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }

    /// Whether the token is a comment.
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One token: a classified byte span of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a total, trivia-preserving token stream.
///
/// Every byte of the input belongs to exactly one token, in order, so
/// `tokens.iter().map(|t| t.text(src)).collect::<String>() == src`.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks: Vec<Token> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let start = i;
        let c = b[i];
        let kind;
        if c.is_ascii_whitespace() {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            kind = TokenKind::Whitespace;
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            kind = TokenKind::LineComment;
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            kind = TokenKind::BlockComment;
        } else if c == b'\'' {
            match scan_quote(b, i) {
                Some((end, k)) => {
                    i = end;
                    kind = k;
                }
                None => {
                    i += 1;
                    kind = TokenKind::Punct;
                }
            }
        } else if c == b'"' {
            i = scan_string(b, i + 1);
            kind = TokenKind::StrLit;
        } else if c == b'r' && matches!(b.get(i + 1), Some(b'"') | Some(b'#')) {
            match scan_raw_prefixed(b, i + 1) {
                RawScan::RawString(end) => {
                    i = end;
                    kind = TokenKind::RawStrLit;
                }
                RawScan::RawIdent(end) => {
                    i = end;
                    kind = TokenKind::RawIdent;
                }
                RawScan::NotRaw => {
                    i = scan_ident(b, i);
                    kind = TokenKind::Ident;
                }
            }
        } else if c == b'b' && matches!(b.get(i + 1), Some(b'"') | Some(b'\'') | Some(b'r')) {
            match b[i + 1] {
                b'"' => {
                    i = scan_string(b, i + 2);
                    kind = TokenKind::ByteStrLit;
                }
                b'\'' => match scan_quote(b, i + 1) {
                    Some((end, _)) => {
                        i = end;
                        kind = TokenKind::ByteLit;
                    }
                    None => {
                        i = scan_ident(b, i);
                        kind = TokenKind::Ident;
                    }
                },
                _ => match scan_raw_prefixed(b, i + 2) {
                    RawScan::RawString(end) => {
                        i = end;
                        kind = TokenKind::ByteStrLit;
                    }
                    _ => {
                        i = scan_ident(b, i);
                        kind = TokenKind::Ident;
                    }
                },
            }
        } else if is_ident_start(c) {
            i = scan_ident(b, i);
            kind = TokenKind::Ident;
        } else if c.is_ascii_digit() {
            i = scan_number(b, i);
            kind = TokenKind::NumLit;
        } else {
            // One punctuation character; consume a full UTF-8 char so a
            // stray non-ASCII byte can't split a code point.
            let width = utf8_width(c);
            i = (i + width).min(b.len());
            kind = TokenKind::Punct;
        }
        debug_assert!(i > start, "lexer must always make progress");
        toks.push(Token {
            kind,
            start,
            end: i,
            line,
        });
        line += src[start..i].bytes().filter(|&c| c == b'\n').count() as u32;
    }
    toks
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Scans past a normal (escaped) string body starting *after* the
/// opening quote; returns the offset just past the closing quote (or
/// EOF for an unterminated literal).
fn scan_string(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn scan_ident(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && is_ident_continue(b[i]) {
        i += 1;
    }
    i
}

/// Disambiguates `'` at offset `i`: char literal vs lifetime/label.
///
/// Returns `(end, kind)`, or `None` when the quote opens a char literal
/// that never closes on the same line (treated as stray punctuation).
fn scan_quote(b: &[u8], i: usize) -> Option<(usize, TokenKind)> {
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escaped char literal: skip escape pairs until the close quote.
        let mut j = i + 1;
        while j < b.len() && b[j] != b'\n' {
            match b[j] {
                b'\\' => j = (j + 2).min(b.len()),
                b'\'' => return Some((j + 1, TokenKind::CharLit)),
                _ => j += 1,
            }
        }
        return None;
    }
    if is_ident_start(next) || next == b'_' {
        let end = scan_ident(b, i + 1);
        // `'a'` (a one-char ident run closed by a quote) is a char
        // literal; `'a` / `'static` / `'_` are lifetimes or labels.
        if b.get(end) == Some(&b'\'') {
            return Some((end + 1, TokenKind::CharLit));
        }
        return Some((end, TokenKind::Lifetime));
    }
    if next.is_ascii_digit() {
        if b.get(i + 2) == Some(&b'\'') {
            return Some((i + 3, TokenKind::CharLit));
        }
        return None;
    }
    // A punctuation char literal like `'{'` or `'"'`.
    if next != b'\'' && b.get(i + 1 + utf8_width(next)) == Some(&b'\'') {
        return Some((i + 2 + utf8_width(next), TokenKind::CharLit));
    }
    None
}

enum RawScan {
    RawString(usize),
    RawIdent(usize),
    NotRaw,
}

/// Scans a raw construct whose `r` (or `br`) prefix ends at offset `i`:
/// either a raw string `#*"…"#*` or a raw identifier `#ident`.
fn scan_raw_prefixed(b: &[u8], i: usize) -> RawScan {
    let mut hashes = 0usize;
    while b.get(i + hashes) == Some(&b'#') {
        hashes += 1;
    }
    match b.get(i + hashes) {
        Some(b'"') => {
            // Body runs until `"` followed by `hashes` hashes.
            let mut j = i + hashes + 1;
            while j < b.len() {
                if b[j] == b'"'
                    && b[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == b'#')
                        .count()
                        == hashes
                {
                    return RawScan::RawString(j + 1 + hashes);
                }
                j += 1;
            }
            RawScan::RawString(j)
        }
        Some(&c) if hashes == 1 && is_ident_start(c) => RawScan::RawIdent(scan_ident(b, i + 1)),
        _ => RawScan::NotRaw,
    }
}

/// Scans a numeric literal starting at a digit.
fn scan_number(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'o') | Some(b'b')) {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part only when the dot is followed by a digit, so
    // ranges (`0..n`) and method calls on integers stay separate tokens.
    if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    // Exponent with an explicit sign (`1e-5`); unsigned exponents are
    // swallowed by the suffix loop below.
    if matches!(b.get(i), Some(b'e') | Some(b'E'))
        && matches!(b.get(i + 1), Some(b'+') | Some(b'-'))
        && b.get(i + 2).is_some_and(|c| c.is_ascii_digit())
    {
        i += 2;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    // Type suffix (`u64`, `f32`) or a plain exponent (`1e5`).
    while i < b.len() && is_ident_continue(b[i]) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn roundtrip(src: &str) {
        let got: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(got, src, "token concatenation must reproduce the source");
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"quote " inside"#; let t = r##"deep "# fence"##;"####;
        roundtrip(src);
        let k = kinds(src);
        assert!(k
            .iter()
            .any(|(kind, text)| *kind == TokenKind::RawStrLit && text.contains("quote")));
        assert!(k
            .iter()
            .any(|(kind, text)| *kind == TokenKind::RawStrLit && text.contains("deep")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        roundtrip(src);
        let k = kinds(src);
        assert_eq!(k.len(), 2, "only the two idents survive: {k:?}");
        assert_eq!(k[0].1, "a");
        assert_eq!(k[1].1, "b");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '\\u{7fff}'; 'outer: loop { break 'outer; } }";
        roundtrip(src);
        let k = kinds(src);
        let lifetimes: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'outer", "'outer"]);
        let chars: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokenKind::CharLit)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'", "'\\u{7fff}'"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'x';"###;
        roundtrip(src);
        let k = kinds(src);
        assert_eq!(
            k.iter()
                .filter(|(kind, _)| *kind == TokenKind::ByteStrLit)
                .count(),
            2
        );
        assert!(k.iter().any(|(kind, _)| *kind == TokenKind::ByteLit));
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#type = 1; let r = 2;";
        roundtrip(src);
        let k = kinds(src);
        assert!(k
            .iter()
            .any(|(kind, text)| *kind == TokenKind::RawIdent && *text == "r#type"));
        assert!(k
            .iter()
            .any(|(kind, text)| *kind == TokenKind::Ident && *text == "r"));
    }

    #[test]
    fn numeric_literals() {
        let src = "let a = 1_000u64; let b = 0xBF58_476D; let c = 1.5e-3; let d = 1e5; let e = 0..10; let f = x.0;";
        roundtrip(src);
        let nums: Vec<&str> = kinds(src)
            .into_iter()
            .filter(|(kind, _)| *kind == TokenKind::NumLit)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            nums,
            vec!["1_000u64", "0xBF58_476D", "1.5e-3", "1e5", "0", "10", "0"]
        );
    }

    #[test]
    fn strings_with_escapes_and_format_braces() {
        let src = r#"let s = format!("{x:.3} \"quoted\" {:>10.3}", y);"#;
        roundtrip(src);
        let strs: Vec<&str> = kinds(src)
            .into_iter()
            .filter(|(kind, _)| *kind == TokenKind::StrLit)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].contains("quoted"));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\nbb\n\nccc // tail\nd";
        let by_text: Vec<(String, u32)> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            by_text,
            vec![
                ("a".to_string(), 1),
                ("bb".to_string(), 2),
                ("ccc".to_string(), 4),
                ("d".to_string(), 5),
            ]
        );
    }

    #[test]
    fn unterminated_constructs_do_not_lose_bytes() {
        roundtrip("let s = \"never closed");
        roundtrip("/* never closed");
        roundtrip("let c = 'a");
        roundtrip("let r = r#\"never closed");
    }
}
