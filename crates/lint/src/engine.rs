//! Orchestration: walk the workspace, run every rule on every file,
//! apply suppressions, enforce the panic budget, and return stable
//! diagnostics.

use crate::diag::{self, Diagnostic};
use crate::lexer::lex;
use crate::registry::{self, Registry};
use crate::rules::{self, FileCtx};
use crate::source::{self, FileKind, WorkspaceFile};
use crate::suppress;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Workspace-relative path of the panic budget file.
pub const PANIC_BUDGET_PATH: &str = "crates/lint/panic_budget.txt";

/// Workspace-relative path of the RNG stream ledger.
pub const LEDGER_PATH: &str = "crates/sim/src/rng.rs";

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates filesystem errors; *findings* are returned as
/// diagnostics, never as errors.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let registry = load_registry(root, &mut diags);
    let budget = load_budget(root, &mut diags);
    let files = source::collect_workspace(root)?;
    let mut counted: BTreeMap<String, usize> = BTreeMap::new();
    for f in &files {
        let src = std::fs::read_to_string(&f.abs)?;
        let n_sites = lint_one(f, &src, registry.as_ref(), &budget, &mut diags);
        if n_sites > 0 {
            counted.insert(f.rel.clone(), n_sites);
        }
    }
    // Stale budget entries: pinned files that no longer have sites.
    for (path, pinned) in &budget {
        if !counted.contains_key(path) && *pinned > 0 {
            diags.push(Diagnostic::new(
                PANIC_BUDGET_PATH,
                1,
                "panic-hygiene",
                format!(
                    "stale budget entry: {path} pins {pinned} panic sites but has none; re-pin with --pin-panic-budget"
                ),
            ));
        }
    }
    diag::sort(&mut diags);
    Ok(diags)
}

/// Lints one source text under an explicit classification; used for
/// fixtures and the CI negative control (`--single`). The panic budget
/// is zero, so any panic site fires.
pub fn lint_single(
    rel: &str,
    src: &str,
    crate_name: &str,
    kind: FileKind,
    registry: Option<&Registry>,
) -> Vec<Diagnostic> {
    let f = WorkspaceFile {
        abs: rel.into(),
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        kind,
    };
    let mut diags = Vec::new();
    lint_one(&f, src, registry, &BTreeMap::new(), &mut diags);
    diag::sort(&mut diags);
    diags
}

/// Runs every rule on one file; returns the file's panic-site count
/// (after suppressions) and appends diagnostics.
fn lint_one(
    f: &WorkspaceFile,
    src: &str,
    registry: Option<&Registry>,
    budget: &BTreeMap<String, usize>,
    diags: &mut Vec<Diagnostic>,
) -> usize {
    let tokens = lex(src);
    let tests = source::test_regions(src, &tokens);
    let (mut sups, bad) = suppress::parse(src, &tokens);
    for b in bad {
        diags.push(Diagnostic::new(
            &f.rel,
            b.line,
            "bad-suppression",
            format!("malformed aba-lint comment: {}", b.why),
        ));
    }
    let ctx = FileCtx::new(&f.rel, &f.crate_name, f.kind, src, &tokens, &tests);
    let mut raw = Vec::new();
    rules::run_all(&ctx, registry, &mut raw);
    for d in raw {
        if !suppress::covers(&mut sups, d.rule, d.line) {
            diags.push(d);
        }
    }
    // Panic hygiene: count unsuppressed sites, compare to the budget.
    let sites: Vec<u32> = rules::panic_sites(&ctx)
        .into_iter()
        .filter(|&line| !suppress::covers(&mut sups, "panic-hygiene", line))
        .collect();
    let pinned = budget.get(&f.rel).copied().unwrap_or(0);
    if sites.len() != pinned {
        diags.push(Diagnostic::new(
            &f.rel,
            sites.first().copied().unwrap_or(1),
            "panic-hygiene",
            format!(
                "{} panic sites (unwrap/expect/panic!/unreachable!/todo!/unimplemented!) but the budget pins {}; fix the drift or re-pin with --pin-panic-budget",
                sites.len(),
                pinned
            ),
        ));
    }
    for s in sups.iter().filter(|s| !s.used) {
        diags.push(Diagnostic::new(
            &f.rel,
            s.line,
            "unused-suppression",
            format!(
                "allow({}) matches no finding; remove the stale annotation",
                s.rules.join(", ")
            ),
        ));
    }
    sites.len()
}

/// Loads and self-checks the stream ledger; problems become findings.
fn load_registry(root: &Path, diags: &mut Vec<Diagnostic>) -> Option<Registry> {
    let path = root.join(LEDGER_PATH);
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            diags.push(Diagnostic::new(
                LEDGER_PATH,
                1,
                "rng-stream-ledger",
                format!("cannot read the stream ledger: {e}"),
            ));
            return None;
        }
    };
    match registry::extract(&src) {
        Ok(reg) => {
            for problem in reg.self_check() {
                diags.push(Diagnostic::new(
                    LEDGER_PATH,
                    1,
                    "rng-stream-ledger",
                    problem,
                ));
            }
            Some(reg)
        }
        Err(e) => {
            diags.push(Diagnostic::new(LEDGER_PATH, 1, "rng-stream-ledger", e));
            None
        }
    }
}

/// Loads `panic_budget.txt` (`<path> <count>` lines, `#` comments).
fn load_budget(root: &Path, diags: &mut Vec<Diagnostic>) -> BTreeMap<String, usize> {
    let mut budget = BTreeMap::new();
    let path = root.join(PANIC_BUDGET_PATH);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            diags.push(Diagnostic::new(
                PANIC_BUDGET_PATH,
                1,
                "panic-hygiene",
                format!("cannot read the panic budget: {e}; pin one with --pin-panic-budget"),
            ));
            return budget;
        }
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let entry = parts.next().map(str::to_string);
        let count = parts.next().and_then(|c| c.parse::<usize>().ok());
        match (entry, count) {
            (Some(p), Some(c)) => {
                budget.insert(p, c);
            }
            _ => diags.push(Diagnostic::new(
                PANIC_BUDGET_PATH,
                lineno as u32 + 1,
                "panic-hygiene",
                format!("unparseable budget line: `{line}`"),
            )),
        }
    }
    budget
}

/// Counts panic sites across the workspace and renders a fresh budget
/// file body (sorted, commented header).
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn pin_panic_budget(root: &Path) -> io::Result<String> {
    let files = source::collect_workspace(root)?;
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in &files {
        let src = std::fs::read_to_string(&f.abs)?;
        let tokens = lex(&src);
        let tests = source::test_regions(&src, &tokens);
        let (mut sups, _) = suppress::parse(&src, &tokens);
        let ctx = FileCtx::new(&f.rel, &f.crate_name, f.kind, &src, &tokens, &tests);
        let n = rules::panic_sites(&ctx)
            .into_iter()
            .filter(|&line| !suppress::covers(&mut sups, "panic-hygiene", line))
            .count();
        if n > 0 {
            counts.insert(f.rel.clone(), n);
        }
    }
    let mut out = String::from(
        "# Pinned panic-site inventory (unwrap/expect/panic!/unreachable!/todo!/unimplemented!)\n\
         # in runtime library code. aba-lint fails when a file drifts from its pinned count in\n\
         # either direction: adding a panic site needs a justified re-pin, and removing one must\n\
         # ratchet the budget down. Regenerate with: cargo run -p aba-lint -- --pin-panic-budget\n",
    );
    for (path, n) in &counts {
        out.push_str(&format!("{path} {n}\n"));
    }
    Ok(out)
}
