//! `aba-lint`: the workspace determinism linter.
//!
//! Every reproducibility guarantee this workspace makes — bit-identical
//! trace replay under all network models, byte-identical sweep
//! artifacts at any worker count, cross-process deterministic
//! mailboxes — rests on source conventions that no compiler checks:
//! no hash-order iteration near results, RNG draws only through the
//! declared stream ledger, `total_cmp` ordering and shortest-roundtrip
//! formatting for floats, message placement only through the delivery
//! seam, and a pinned panic-site inventory. This crate enforces those
//! conventions mechanically: a hand-rolled lexer (token stream only,
//! no parse, zero dependencies — matching the workspace's offline
//! constraint), per-crate rule scoping, inline annotated exceptions
//! with mandatory reasons, and stable `file:line rule-id message`
//! output. It runs as a CI gate and as this crate's own integration
//! test, which asserts the workspace is lint-clean.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod source;
pub mod suppress;

pub use diag::Diagnostic;
pub use engine::{lint_single, lint_workspace, pin_panic_budget};
pub use source::FileKind;
