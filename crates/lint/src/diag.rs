//! Diagnostics: stable, sortable `file:line rule-id message` findings.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human explanation, one line.
    pub msg: String,
}

impl Diagnostic {
    /// Builds a finding.
    pub fn new(path: &str, line: u32, rule: &'static str, msg: impl Into<String>) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {} {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Sorts findings into the stable output order (path, line, rule, msg).
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.msg.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.msg.as_str(),
        ))
    });
}
