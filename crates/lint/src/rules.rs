//! The rule catalogue.
//!
//! Each rule is a token-stream pass over one classified file. Rules are
//! deliberately heuristic — no type information — but every heuristic
//! errs toward firing, and intentional exceptions are annotated in
//! place with a mandatory reason, which turns the annotation inventory
//! into documentation of the workspace's invariant boundary.
//!
//! | rule id | invariant it guards |
//! |---|---|
//! | `hash-nondeterminism` | no hash-order iteration near results |
//! | `wall-clock-in-sim` | engine output is a pure fn of (config, seed) |
//! | `rng-stream-ledger` | every RNG stream is declared exactly once |
//! | `float-determinism` | total_cmp ordering, roundtrip float artifacts |
//! | `seam-bypass` | only the engine/Delivery adapters place messages |
//! | `panic-hygiene` | library panic sites are pinned, not accreted |

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::registry::Registry;
use crate::source::{FileKind, TestRegions};

/// Rule ids an `allow(...)` comment may name.
pub const RULE_IDS: &[&str] = &[
    "hash-nondeterminism",
    "wall-clock-in-sim",
    "rng-stream-ledger",
    "float-determinism",
    "seam-bypass",
    "panic-hygiene",
];

/// Crates allowed to mutate `RoundMailbox` contents: the engine and
/// the network-model Delivery adapters.
const SEAM_OWNERS: &[&str] = &["aba-sim", "aba-net"];

/// Files that write replay-grade artifacts; fixed-precision float
/// formatting is flagged here (shortest-roundtrip `{}` is the rule).
const ARTIFACT_PATHS: &[&str] = &[
    "crates/sweep/src/artifact.rs",
    "crates/sweep/src/checkpoint.rs",
    "crates/harness/src/report.rs",
    "crates/analysis/src/table.rs",
    "crates/analysis/src/plot.rs",
];

/// The stream-ledger file itself (exempt from raw-derivation checks —
/// it is the one place allowed to touch seeds directly).
const LEDGER_FILE: &str = "crates/sim/src/rng.rs";

/// The registered wall-clock files: the observability **timing
/// channel**. These are the only library files allowed to read the
/// clock — scoping lives here, in the rule, so the files themselves
/// need no blanket `#[allow]`s and adding a new wall-clock site
/// anywhere else still fails the lint.
const TIMING_PATHS: &[&str] = &["crates/obs/src/timing.rs", "crates/sweep/src/profiling.rs"];

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Owning package.
    pub crate_name: &'a str,
    /// File role.
    pub kind: FileKind,
    /// Source text.
    pub src: &'a str,
    /// Significant (non-trivia) tokens, in order.
    pub sig: Vec<&'a Token>,
    /// `#[cfg(test)]` coverage.
    pub tests: &'a TestRegions,
}

impl<'a> FileCtx<'a> {
    /// Builds a context from a full token stream.
    pub fn new(
        rel: &'a str,
        crate_name: &'a str,
        kind: FileKind,
        src: &'a str,
        tokens: &'a [Token],
        tests: &'a TestRegions,
    ) -> Self {
        FileCtx {
            rel,
            crate_name,
            kind,
            src,
            sig: tokens.iter().filter(|t| !t.kind.is_trivia()).collect(),
            tests,
        }
    }

    fn text(&self, i: usize) -> &'a str {
        self.sig[i].text(self.src)
    }

    /// Library (or bin) code that is not test-gated: the code whose
    /// behavior reaches results.
    fn is_runtime(&self, line: u32) -> bool {
        matches!(self.kind, FileKind::Lib | FileKind::Bin) && !self.tests.contains(line)
    }

    fn is_artifact_path(&self) -> bool {
        ARTIFACT_PATHS.contains(&self.rel) || self.rel.contains("tests/fixtures/")
    }

    /// Fixture files opt into every scope so each rule can be pinned.
    fn is_fixture(&self) -> bool {
        self.crate_name == "aba-fixture"
    }
}

/// Runs rules 1–5, appending raw (unsuppressed) findings.
pub fn run_all(ctx: &FileCtx, registry: Option<&Registry>, out: &mut Vec<Diagnostic>) {
    hash_nondeterminism(ctx, out);
    wall_clock(ctx, out);
    rng_stream_ledger(ctx, registry, out);
    float_determinism(ctx, out);
    seam_bypass(ctx, out);
}

/// Rule 1: `HashMap`/`HashSet` (and friends keyed by `RandomState`)
/// iterate in a per-process order; one such iteration on a
/// result-affecting path silently breaks cross-process replay.
/// Applies everywhere except the timing crate — test assertions that
/// genuinely only use membership carry an annotation saying so.
fn hash_nondeterminism(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "aba-bench" || ctx.kind == FileKind::Bench {
        return;
    }
    for (i, t) in ctx.sig.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(i);
        if matches!(
            name,
            "HashMap" | "HashSet" | "RandomState" | "DefaultHasher"
        ) {
            out.push(Diagnostic::new(
                ctx.rel,
                t.line,
                "hash-nondeterminism",
                format!(
                    "`{name}` has process-nondeterministic iteration order; use BTreeMap/BTreeSet/Vec, or annotate why ordering cannot reach results"
                ),
            ));
        }
    }
}

/// Rule 2: no wall-clock or environment reads in engine-grade library
/// code — a trial's outcome must be a pure function of (config, seed).
/// Bins, benches, examples, and tests are harness territory, and the
/// registered [`TIMING_PATHS`] carry the observability timing channel.
fn wall_clock(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.kind != FileKind::Lib || ctx.crate_name == "aba-bench" || TIMING_PATHS.contains(&ctx.rel)
    {
        return;
    }
    for (i, t) in ctx.sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || !ctx.is_runtime(t.line) {
            continue;
        }
        let name = ctx.text(i);
        let hit = match name {
            "Instant" | "SystemTime" => true,
            "sleep" => true,
            "env" => {
                i >= 3
                    && ctx.text(i - 1) == ":"
                    && ctx.text(i - 2) == ":"
                    && ctx.text(i - 3) == "std"
            }
            _ => false,
        };
        if hit {
            out.push(Diagnostic::new(
                ctx.rel,
                t.line,
                "wall-clock-in-sim",
                format!(
                    "`{name}` reads the clock/environment in library code; engine results must be a pure function of (config, seed)"
                ),
            ));
        }
    }
}

/// Rule 3: RNG streams come from the single declared ledger
/// (`aba-sim::rng::streams`). Unregistered `streams::X` references,
/// raw `seed_from_u64`/`derive_seed` calls outside the ledger file, and
/// numeric-literal stream arguments to `rng_for` all bypass the ledger.
fn rng_stream_ledger(ctx: &FileCtx, registry: Option<&Registry>, out: &mut Vec<Diagnostic>) {
    // Check A: every streams::X reference must be registered.
    if let Some(reg) = registry {
        for (i, t) in ctx.sig.iter().enumerate() {
            if t.kind == TokenKind::Ident
                && ctx.text(i) == "streams"
                && i + 3 < ctx.sig.len()
                && ctx.text(i + 1) == ":"
                && ctx.text(i + 2) == ":"
                && ctx.sig[i + 3].kind == TokenKind::Ident
            {
                let name = ctx.text(i + 3);
                if !reg.contains(name) {
                    out.push(Diagnostic::new(
                        ctx.rel,
                        t.line,
                        "rng-stream-ledger",
                        format!(
                            "stream `{name}` is not declared in the ledger (crates/sim/src/rng.rs, mod streams)"
                        ),
                    ));
                }
            }
        }
    }
    // Check B/C: raw seeding in runtime code outside the ledger file.
    let exempt = ctx.rel == LEDGER_FILE
        || (ctx.crate_name == "rand" && !ctx.is_fixture())
        || ctx.crate_name == "aba-bench"
        || ctx.crate_name == "aba-lint";
    if !exempt {
        for (i, t) in ctx.sig.iter().enumerate() {
            if t.kind != TokenKind::Ident || !ctx.is_runtime(t.line) {
                continue;
            }
            let name = ctx.text(i);
            if name == "seed_from_u64" {
                out.push(Diagnostic::new(
                    ctx.rel,
                    t.line,
                    "rng-stream-ledger",
                    "raw RNG construction bypasses the stream ledger; derive through aba_sim::rng::rng_for / node_rng",
                ));
            } else if name == "derive_seed" {
                out.push(Diagnostic::new(
                    ctx.rel,
                    t.line,
                    "rng-stream-ledger",
                    "raw seed derivation outside the ledger file; register a named stream instead of ad-hoc seed arithmetic",
                ));
            }
        }
    }
    // Check D: the stream argument of rng_for must be a named constant.
    for (i, t) in ctx.sig.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && ctx.text(i) == "rng_for"
            && i + 1 < ctx.sig.len()
            && ctx.text(i + 1) == "("
        {
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < ctx.sig.len() {
                match ctx.text(k) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "," if depth == 1 => {
                        if ctx
                            .sig
                            .get(k + 1)
                            .is_some_and(|n| n.kind == TokenKind::NumLit)
                        {
                            out.push(Diagnostic::new(
                                ctx.rel,
                                t.line,
                                "rng-stream-ledger",
                                "rng_for stream argument must be a named streams:: constant, not a raw number (two call sites sharing a literal is a silent stream collision)",
                            ));
                        }
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
}

/// Rule 4: float determinism — `total_cmp` for ordering, f64 on
/// accumulation paths, shortest-roundtrip formatting in artifact
/// writers.
fn float_determinism(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "aba-bench" || ctx.kind == FileKind::Bench {
        return;
    }
    for (i, t) in ctx.sig.iter().enumerate() {
        if t.kind == TokenKind::Ident && ctx.text(i) == "partial_cmp" {
            out.push(Diagnostic::new(
                ctx.rel,
                t.line,
                "float-determinism",
                "`partial_cmp` is not a total order on floats; sort keys must use f64::total_cmp",
            ));
        }
        if t.kind == TokenKind::Ident
            && ctx.text(i) == "as"
            && ctx.sig.get(i + 1).is_some_and(|n| n.text(ctx.src) == "f32")
            && ctx.is_runtime(t.line)
        {
            out.push(Diagnostic::new(
                ctx.rel,
                t.line,
                "float-determinism",
                "narrowing `as f32` cast on a library path; accumulate and report in f64 (annotate if the narrowing is intentional)",
            ));
        }
    }
    if ctx.is_artifact_path() {
        for (i, t) in ctx.sig.iter().enumerate() {
            if matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit)
                && ctx.is_runtime(t.line)
                && has_precision_spec(ctx.text(i))
            {
                out.push(Diagnostic::new(
                    ctx.rel,
                    t.line,
                    "float-determinism",
                    "fixed-precision float formatting on an artifact-writing path loses roundtrip; use shortest-roundtrip `{}` (annotate human-facing exceptions)",
                ));
            }
        }
    }
}

/// Whether a format-string literal contains a `{…:…\.N…}` precision
/// spec (e.g. `{x:.3}`, `{:>10.3}`).
fn has_precision_spec(lit: &str) -> bool {
    let b = lit.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] != b'{' {
            i += 1;
            continue;
        }
        if b.get(i + 1) == Some(&b'{') {
            i += 2;
            continue;
        }
        let close = match b[i..].iter().position(|&c| c == b'}') {
            Some(off) => i + off,
            None => return false,
        };
        let spec = &lit[i + 1..close];
        if let Some(colon) = spec.find(':') {
            let fmt = &spec.as_bytes()[colon + 1..];
            for (j, &c) in fmt.iter().enumerate() {
                if c == b'.' && fmt.get(j + 1).is_some_and(|n| n.is_ascii_alphanumeric()) {
                    return true;
                }
            }
        }
        i = close + 1;
    }
    false
}

/// Rule 5: only the engine (`aba-sim`) and the network Delivery
/// adapters (`aba-net`) may place or remove messages; protocol,
/// adversary, and analysis code observing the mailbox must stay
/// read-only, or replay recordings diverge from live runs.
///
/// All three message planes are covered: the mutator names are shared
/// through the `MessagePlane` trait, and constructing any plane
/// (`RoundMailbox`, the bit-packed `PackedMailbox`, or the
/// adjacency-list `SparseMailbox`) outside the seam owners is itself a
/// finding.
///
/// The provenance seam is held to the same rule: the engine alone
/// records arrivals into the `ArrivalScan` it hands probes, so
/// constructing one or calling its recording mutators outside the seam
/// owners fires — a hand-built scan would let analysis code fabricate
/// causal history the replay differential can never check.
fn seam_bypass(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if SEAM_OWNERS.contains(&ctx.crate_name) {
        return;
    }
    const MUTATORS: &[&str] = &[
        "set_broadcast_except",
        "merge_broadcast_except",
        "knock_out",
        "take_broadcast",
        "insert_if_vacant",
        "insert_if_vacant_with",
        "silence",
    ];
    /// `ArrivalScan` recording mutators (the read-side getters are fair
    /// game everywhere — that is what the probe seam is for).
    const ARRIVAL_MUTATORS: &[&str] = &[
        "mark_base",
        "mark_knocked",
        "or_knocked_word",
        "mark_extra",
        "or_extra_word",
        "add_sent",
        "add_recv",
        "finish_base_recv",
        "set_corrupted",
        "tally_offered",
        "scan_arrivals",
    ];
    for (i, t) in ctx.sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || !ctx.is_runtime(t.line) {
            continue;
        }
        let name = ctx.text(i);
        let constructed = matches!(
            name,
            "RoundMailbox" | "PackedMailbox" | "SparseMailbox" | "ArrivalScan"
        ) && i + 3 < ctx.sig.len()
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && matches!(ctx.text(i + 3), "new" | "default");
        let hit = constructed
            || MUTATORS.contains(&name)
            || ARRIVAL_MUTATORS.contains(&name)
            || (name == "set"
                && i >= 1
                && ctx.text(i - 1) == "."
                && ctx.sig.get(i + 1).is_some_and(|n| n.text(ctx.src) == "("));
        if hit {
            let what = if ARRIVAL_MUTATORS.contains(&name) || name == "ArrivalScan" {
                "records/constructs the arrival scan"
            } else {
                "mutates/constructs the round mailbox"
            };
            out.push(Diagnostic::new(
                ctx.rel,
                t.line,
                "seam-bypass",
                format!(
                    "`{name}` {what} outside aba-sim/aba-net; message placement and arrival recording must go through the engine seams"
                ),
            ));
        }
    }
}

/// Rule 6 (inventory half): panic sites in runtime library code.
/// The engine compares each file's count against the pinned budget.
pub fn panic_sites(ctx: &FileCtx) -> Vec<u32> {
    let mut sites = Vec::new();
    if !matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
        return sites;
    }
    for (i, t) in ctx.sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || !ctx.is_runtime(t.line) {
            continue;
        }
        let name = ctx.text(i);
        let next = ctx.sig.get(i + 1).map(|n| n.text(ctx.src));
        let is_call = matches!(name, "unwrap" | "expect") && next == Some("(");
        let is_macro =
            matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") && next == Some("!");
        if is_call || is_macro {
            sites.push(t.line);
        }
    }
    sites
}
