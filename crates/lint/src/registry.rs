//! The RNG stream ledger, extracted from source.
//!
//! Every named randomness stream in the workspace is declared exactly
//! once, in the `pub mod streams` block of `crates/sim/src/rng.rs`.
//! The linter parses that block (token-level, tiny const-expression
//! evaluator) and cross-checks every `streams::X` reference in the
//! workspace against it, so a subsystem cannot invent an unregistered
//! stream — two subsystems silently sharing a stream id is exactly the
//! bug class that breaks reorder-stable seeding.

use crate::lexer::{lex, Token, TokenKind};

/// Node streams use their index (0..n); reserved engine streams must
/// live far above any plausible network size.
pub const RESERVED_FLOOR: u64 = 1 << 32;

/// The parsed stream ledger.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// `(name, value)` pairs in declaration order.
    pub streams: Vec<(String, u64)>,
}

impl Registry {
    /// Whether `name` is a registered stream constant.
    pub fn contains(&self, name: &str) -> bool {
        self.streams.iter().any(|(n, _)| n == name)
    }

    /// Problems with the ledger itself: duplicate values (two
    /// subsystems sharing a stream) and reserved constants below the
    /// node-index space.
    pub fn self_check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, (name_a, val_a)) in self.streams.iter().enumerate() {
            for (name_b, val_b) in &self.streams[i + 1..] {
                if val_a == val_b {
                    problems.push(format!(
                        "streams {name_a} and {name_b} share value {val_a:#x}; every stream must be unique"
                    ));
                }
            }
            if *val_a < RESERVED_FLOOR {
                problems.push(format!(
                    "stream {name_a} = {val_a:#x} collides with the node-index stream space (< 2^32)"
                ));
            }
        }
        problems
    }
}

/// Extracts the registry from the source of the ledger file.
///
/// # Errors
///
/// Returns a description when the `streams` module or a constant in it
/// cannot be parsed — a broken ledger must fail the lint, not pass it.
pub fn extract(src: &str) -> Result<Registry, String> {
    let tokens = lex(src);
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_trivia()).collect();
    let start = sig
        .windows(2)
        .position(|w| w[0].text(src) == "mod" && w[1].text(src) == "streams")
        .ok_or("no `mod streams` block found in the ledger file")?;
    // Find the module's opening brace, then walk its consts.
    let mut i = start + 2;
    while i < sig.len() && sig[i].text(src) != "{" {
        i += 1;
    }
    if i >= sig.len() {
        return Err("`mod streams` has no body".to_string());
    }
    let mut depth = 0i32;
    let mut streams = Vec::new();
    while i < sig.len() {
        let t = sig[i].text(src);
        match t {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "const" if depth == 1 => {
                let name = sig
                    .get(i + 1)
                    .map(|t| t.text(src).to_string())
                    .ok_or("const without a name in `mod streams`")?;
                // Skip to `=`, then evaluate tokens up to `;`.
                let mut j = i + 2;
                while j < sig.len() && sig[j].text(src) != "=" {
                    j += 1;
                }
                let mut expr = Vec::new();
                let mut k = j + 1;
                while k < sig.len() && sig[k].text(src) != ";" {
                    expr.push(sig[k]);
                    k += 1;
                }
                let value = eval(src, &expr)
                    .ok_or_else(|| format!("cannot evaluate stream constant {name}"))?;
                streams.push((name, value));
                i = k;
            }
            _ => {}
        }
        i += 1;
    }
    if streams.is_empty() {
        return Err("`mod streams` declares no constants".to_string());
    }
    Ok(Registry { streams })
}

/// Evaluates the tiny const-expression language the ledger uses:
/// integer literals, `u64::MAX`, and left-associative `+`/`-` chains.
fn eval(src: &str, expr: &[&Token]) -> Option<u64> {
    let mut value: Option<u64> = None;
    let mut op: u8 = b'+';
    let mut i = 0usize;
    while i < expr.len() {
        let t = expr[i];
        let text = t.text(src);
        let operand = if t.kind == TokenKind::NumLit {
            i += 1;
            parse_int(text)?
        } else if text == "u64"
            && expr.get(i + 1).map(|t| t.text(src)) == Some(":")
            && expr.get(i + 2).map(|t| t.text(src)) == Some(":")
            && expr.get(i + 3).map(|t| t.text(src)) == Some("MAX")
        {
            i += 4;
            u64::MAX
        } else if text == "+" || text == "-" {
            op = text.as_bytes()[0];
            i += 1;
            continue;
        } else {
            return None;
        };
        value = Some(match (value, op) {
            (None, _) => operand,
            (Some(v), b'+') => v.checked_add(operand)?,
            (Some(v), _) => v.checked_sub(operand)?,
        });
    }
    value
}

/// Parses a Rust integer literal (underscores, `0x`/`0o`/`0b`, suffix).
fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(hex) = clean.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(oct) = clean.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = clean.strip_prefix("0b") {
        (bin, 2)
    } else {
        (clean.as_str(), 10)
    };
    let digits = digits.trim_end_matches(|c: char| c.is_ascii_alphabetic() && radix == 10);
    let digits = digits.strip_suffix("u64").unwrap_or(digits);
    u64::from_str_radix(digits, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEDGER: &str = "pub mod streams {\n    /// doc\n    pub const ADVERSARY: u64 = u64::MAX;\n    pub const ENGINE: u64 = u64::MAX - 1;\n    pub const INPUTS: u64 = u64::MAX - 2;\n    pub const NETWORK: u64 = u64::MAX - 3;\n}\n";

    #[test]
    fn extracts_the_four_seed_streams() {
        let reg = extract(LEDGER).unwrap();
        assert_eq!(reg.streams.len(), 4);
        assert_eq!(reg.streams[0], ("ADVERSARY".to_string(), u64::MAX));
        assert_eq!(reg.streams[3], ("NETWORK".to_string(), u64::MAX - 3));
        assert!(reg.contains("ENGINE"));
        assert!(!reg.contains("BOGUS"));
        assert!(reg.self_check().is_empty());
    }

    #[test]
    fn duplicate_values_are_flagged() {
        let reg =
            extract("mod streams { pub const A: u64 = u64::MAX; pub const B: u64 = u64::MAX; }")
                .unwrap();
        let problems = reg.self_check();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("share value"));
    }

    #[test]
    fn low_streams_collide_with_node_space() {
        let reg = extract("mod streams { pub const LOW: u64 = 7; }").unwrap();
        assert!(reg.self_check()[0].contains("node-index"));
    }

    #[test]
    fn missing_module_is_an_error() {
        assert!(extract("pub fn nothing() {}").is_err());
    }

    #[test]
    fn literal_forms_parse() {
        assert_eq!(parse_int("1_000"), Some(1000));
        assert_eq!(parse_int("0xFF"), Some(255));
        assert_eq!(parse_int("42u64"), Some(42));
    }
}
