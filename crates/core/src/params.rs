//! Protocol configuration: committee sizing, termination mode, coin
//! source.

use aba_coin::CommitteePlan;
use std::error::Error;
use std::fmt;

/// Base-2 logarithm used for committee sizing (clamped below at 1 so
/// tiny networks stay well formed).
fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// How the protocol terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationMode {
    /// Run exactly `c` phases and decide the current value (Algorithm 3
    /// as written): agreement holds w.h.p.
    Whp,
    /// Loop over the committees forever, relying on the early-termination
    /// mechanism (Section 3.2): agreement always holds, round count is a
    /// random variable.
    LasVegas,
}

/// Where the fallback coin of case 3 comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinSource {
    /// Phase `i`'s committee flips (Algorithm 2) — the paper's protocol.
    Committee,
    /// A trusted dealer supplies a shared random bit per phase — Rabin's
    /// original assumption (reference &#91;28&#93; of the paper), reproduced as the idealized baseline.
    /// All nodes derive the same unpredictable-to-the-protocol bit from
    /// this seed.
    Dealer {
        /// The dealer's seed.
        seed: u64,
    },
    /// Every node flips its **own** local coin — the Ben-Or-style
    /// baseline (reference &#91;5&#93; of the paper). No communication for the
    /// coin at all, but convergence now needs a large binomial deviation
    /// to align a supermajority, so the expected round count explodes
    /// with `n` — the measurable reason shared coins matter (experiment
    /// E15).
    Private,
}

/// Whether the committee coin rides on round-2 messages or gets its own
/// round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinRoundMode {
    /// Committee members attach their flip to the round-2 broadcast
    /// (2 rounds/phase). Default; preserves the adversarial ordering of
    /// the paper (flips drawn after round 1 fixed `b_i`, visible to the
    /// rushing adversary before round-2 delivery).
    Piggyback,
    /// Algorithm 2 runs as its own third round (3 rounds/phase), the
    /// literal reading of the paper.
    Literal,
}

/// Errors from configuration validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Resilience bound `n ≥ 3t + 1` violated.
    TooManyFaults {
        /// Network size.
        n: usize,
        /// Requested fault budget.
        t: usize,
    },
    /// Network too small.
    TooSmall {
        /// Network size.
        n: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooManyFaults { n, t } => {
                write!(f, "resilience requires n ≥ 3t+1, got n={n}, t={t}")
            }
            ConfigError::TooSmall { n } => write!(f, "network of n={n} nodes is too small"),
        }
    }
}

impl Error for ConfigError {}

/// Full configuration of the committee-based agreement protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct BaConfig {
    /// Network size `n`.
    pub n: usize,
    /// Fault tolerance `t` (the protocol's thresholds use this value; the
    /// adversary may use fewer corruptions).
    pub t: usize,
    /// The committee partition.
    pub plan: CommitteePlan,
    /// Number of phases `c` in [`TerminationMode::Whp`] mode.
    pub phases: u64,
    /// Termination mode.
    pub mode: TerminationMode,
    /// Fallback-coin source.
    pub coin: CoinSource,
    /// Coin round placement.
    pub coin_round: CoinRoundMode,
}

impl BaConfig {
    /// The paper's protocol (Algorithm 3) with committee count
    /// `c = min{α·⌈t²/n⌉·log n, 3α·t/log n}` (clamped to `[1, n]`).
    ///
    /// # Errors
    ///
    /// Rejects `n < 3t + 1` (the optimal-resilience precondition) and
    /// `n == 0`.
    pub fn paper(n: usize, t: usize, alpha: f64) -> Result<Self, ConfigError> {
        Self::validate(n, t)?;
        let c = Self::committee_count(n, t, alpha);
        let plan = CommitteePlan::with_committee_count(n, c);
        Ok(BaConfig {
            n,
            t,
            // The formula's c; if rounding made the partition coarser the
            // schedule wraps around, so exactly c phases still run.
            phases: c as u64,
            plan,
            mode: TerminationMode::Whp,
            coin: CoinSource::Committee,
            coin_round: CoinRoundMode::Piggyback,
        })
    }

    /// The Las Vegas variant of the paper's protocol (Section 3.2).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BaConfig::paper`].
    pub fn paper_las_vegas(n: usize, t: usize, alpha: f64) -> Result<Self, ConfigError> {
        let mut cfg = Self::paper(n, t, alpha)?;
        cfg.mode = TerminationMode::LasVegas;
        Ok(cfg)
    }

    /// The Chor–Coan baseline: identical phase structure but committees
    /// of fixed size `⌈β·log n⌉` regardless of `t` (footnote 3's
    /// rushing-hardened reading of Chor–Coan 1985). Expected round
    /// complexity `O(t/log n)` under its home (non-rushing) adversary.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BaConfig::paper`].
    pub fn chor_coan(n: usize, t: usize, beta: f64) -> Result<Self, ConfigError> {
        Self::validate(n, t)?;
        assert!(beta > 0.0, "beta must be positive");
        let size = (beta * log2n(n)).ceil() as usize;
        let plan = CommitteePlan::with_committee_size(n, size.max(1));
        Ok(BaConfig {
            n,
            t,
            phases: plan.count() as u64,
            plan,
            mode: TerminationMode::LasVegas,
            coin: CoinSource::Committee,
            coin_round: CoinRoundMode::Piggyback,
        })
    }

    /// Rabin's protocol: the same phase structure with a trusted-dealer
    /// shared coin. Expected O(1) phases; the idealized upper baseline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BaConfig::paper`].
    pub fn rabin_dealer(n: usize, t: usize, dealer_seed: u64) -> Result<Self, ConfigError> {
        Self::validate(n, t)?;
        let plan = CommitteePlan::with_committee_count(n, 1);
        Ok(BaConfig {
            n,
            t,
            phases: plan.count() as u64,
            plan,
            mode: TerminationMode::LasVegas,
            coin: CoinSource::Dealer { seed: dealer_seed },
            coin_round: CoinRoundMode::Piggyback,
        })
    }

    /// The Ben-Or-style private-coin baseline: identical phase structure
    /// but case 3 uses each node's own local coin. Always-correct, but
    /// expected rounds grow exponentially with the honest-supermajority
    /// deviation needed — the paper's motivation, measurable (E15).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BaConfig::paper`].
    pub fn ben_or_private(n: usize, t: usize) -> Result<Self, ConfigError> {
        Self::validate(n, t)?;
        let plan = CommitteePlan::with_committee_count(n, 1);
        Ok(BaConfig {
            n,
            t,
            phases: plan.count() as u64,
            plan,
            mode: TerminationMode::LasVegas,
            coin: CoinSource::Private,
            coin_round: CoinRoundMode::Piggyback,
        })
    }

    /// Switches termination mode.
    #[must_use]
    pub fn with_mode(mut self, mode: TerminationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Switches coin-round placement.
    #[must_use]
    pub fn with_coin_round(mut self, m: CoinRoundMode) -> Self {
        self.coin_round = m;
        self
    }

    fn validate(n: usize, t: usize) -> Result<(), ConfigError> {
        if n == 0 {
            return Err(ConfigError::TooSmall { n });
        }
        if n < 3 * t + 1 {
            return Err(ConfigError::TooManyFaults { n, t });
        }
        Ok(())
    }

    /// Algorithm 3 line 2: `c = min{α·⌈t²/n⌉·log n, 3α·t/log n}`,
    /// clamped to `[1, n]`.
    pub fn committee_count(n: usize, t: usize, alpha: f64) -> usize {
        assert!(alpha > 0.0, "alpha must be positive");
        if t == 0 {
            return 1;
        }
        let l = log2n(n);
        let branch1 = alpha * ((t * t).div_ceil(n)) as f64 * l;
        let branch2 = 3.0 * alpha * t as f64 / l;
        (branch1.min(branch2).ceil() as usize).clamp(1, n)
    }

    /// Rounds per phase under the configured coin placement.
    pub fn rounds_per_phase(&self) -> u64 {
        match self.coin_round {
            CoinRoundMode::Piggyback => 2,
            CoinRoundMode::Literal => 3,
        }
    }

    /// Maps an engine round to `(phase, subround)`, both 1-based.
    pub fn schedule(&self, round: aba_sim::Round) -> (u64, u64) {
        let rpp = self.rounds_per_phase();
        (round.index() / rpp + 1, round.index() % rpp + 1)
    }

    /// The committee flipping in a given (1-based) phase; wraps around in
    /// Las Vegas mode.
    pub fn committee_for_phase(&self, phase: u64) -> usize {
        self.plan.committee_for_phase(phase)
    }

    /// The dealer's shared coin for a phase (only for
    /// [`CoinSource::Dealer`]).
    pub fn dealer_coin(&self, phase: u64) -> Option<bool> {
        match self.coin {
            // aba-lint: allow(rng-stream-ledger) — dealer coin hashes the configured seed, not a ledger stream; no RNG state is consumed
            CoinSource::Dealer { seed } => Some(aba_sim::rng::derive_seed(seed, phase) & 1 == 1),
            CoinSource::Committee | CoinSource::Private => None,
        }
    }

    /// Total engine rounds of a full Whp run (`c` phases).
    pub fn whp_round_budget(&self) -> u64 {
        self.phases * self.rounds_per_phase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_regimes() {
        // t = 32 at n = 4096: branch2 (3αt/log n = 8) beats branch1
        // (α·⌈t²/n⌉·log n = 12).
        let cfg = BaConfig::paper(4096, 32, 1.0).unwrap();
        assert_eq!(cfg.phases, 8);
        // t = 64: branch1 (12) beats branch2 (16).
        let cfg = BaConfig::paper(4096, 64, 1.0).unwrap();
        assert_eq!(cfg.phases, 12);
        assert_eq!(cfg.mode, TerminationMode::Whp);
        // t = 0 degenerates to one committee (= Algorithm 1).
        let cfg = BaConfig::paper(64, 0, 2.0).unwrap();
        assert_eq!(cfg.plan.count(), 1);
        assert_eq!(cfg.plan.committee_size(), 64);
    }

    #[test]
    fn paper_config_rejects_bad_inputs() {
        assert!(matches!(
            BaConfig::paper(9, 3, 1.0),
            Err(ConfigError::TooManyFaults { .. })
        ));
        assert!(BaConfig::paper(10, 3, 1.0).is_ok());
        assert!(matches!(
            BaConfig::paper(0, 0, 1.0),
            Err(ConfigError::TooSmall { .. })
        ));
    }

    #[test]
    fn committee_count_monotone_in_t_smallish() {
        let n = 1 << 14;
        let mut last = 0;
        for t in [1usize, 8, 32, 128, 512, 2048] {
            let c = BaConfig::committee_count(n, t, 2.0);
            assert!(c >= last, "c must grow with t (t={t}: {c} < {last})");
            last = c;
        }
    }

    #[test]
    fn chor_coan_committee_size_is_logarithmic() {
        let cfg = BaConfig::chor_coan(4096, 1000, 1.0).unwrap();
        assert_eq!(cfg.plan.committee_size(), 12); // log2(4096)
        let cfg = BaConfig::chor_coan(4096, 16, 1.0).unwrap();
        assert_eq!(cfg.plan.committee_size(), 12, "independent of t");
        assert_eq!(cfg.mode, TerminationMode::LasVegas);
    }

    #[test]
    fn rabin_dealer_coin_is_shared_and_varied() {
        let cfg = BaConfig::rabin_dealer(16, 5, 99).unwrap();
        let c1 = cfg.dealer_coin(1).unwrap();
        assert_eq!(cfg.dealer_coin(1).unwrap(), c1, "deterministic per phase");
        // aba-lint: allow(hash-nondeterminism) — distinctness count only; iteration order never observed
        let distinct: std::collections::HashSet<bool> =
            (1..40).map(|p| cfg.dealer_coin(p).unwrap()).collect();
        assert_eq!(distinct.len(), 2, "dealer coin takes both values");
        // Committee-source config has no dealer coin.
        let paper = BaConfig::paper(16, 5, 1.0).unwrap();
        assert_eq!(paper.dealer_coin(1), None);
    }

    #[test]
    fn schedule_piggyback_and_literal() {
        let cfg = BaConfig::paper(16, 5, 1.0).unwrap();
        assert_eq!(cfg.rounds_per_phase(), 2);
        assert_eq!(cfg.schedule(aba_sim::Round::new(0)), (1, 1));
        assert_eq!(cfg.schedule(aba_sim::Round::new(1)), (1, 2));
        assert_eq!(cfg.schedule(aba_sim::Round::new(4)), (3, 1));
        let cfg = cfg.with_coin_round(CoinRoundMode::Literal);
        assert_eq!(cfg.rounds_per_phase(), 3);
        assert_eq!(cfg.schedule(aba_sim::Round::new(5)), (2, 3));
    }

    #[test]
    fn whp_round_budget() {
        let cfg = BaConfig::paper(4096, 32, 1.0).unwrap();
        assert_eq!(cfg.whp_round_budget(), 16); // 8 phases × 2 rounds
    }

    #[test]
    fn config_error_displays() {
        let e = ConfigError::TooManyFaults { n: 9, t: 3 };
        assert!(e.to_string().contains("3t+1"));
        let e = ConfigError::TooSmall { n: 0 };
        assert!(e.to_string().contains("n=0"));
    }
}
