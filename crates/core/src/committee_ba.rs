//! Algorithm 3 — committee-based Byzantine agreement.
//!
//! Each phase has two communication rounds (default piggyback mode):
//!
//! * **Round 1** (lines 8–16): broadcast `(i, 1, val, decided)`; if at
//!   least `n − t` received messages carry an identical value `b`, set
//!   `val := b`, `decided := true`, else `decided := false`.
//! * **Round 2** (lines 19–31): broadcast `(i, 2, val, decided)` — with
//!   committee-`i` members attaching a fresh ±1 flip. Then:
//!   - **Case 1**: `≥ n − t` messages `(i,2,b,True)` → adopt `b`, set
//!     `finish`;
//!   - **Case 2**: `≥ t + 1` such messages → adopt `b`, `decided := true`;
//!   - **Case 3**: otherwise adopt the committee coin (sign of the sum of
//!     committee flips, Algorithm 2), `decided := false`.
//!
//! # Termination (`finish`) handling
//!
//! The paper says a finishing node "terminates after broadcasting its
//! value one more time in the next phase" (lines 9–10). Read literally,
//! that farewell appears only in round 1 of phase `i+1`, so a node that
//! still needs `n − t` round-**2** `True` messages in phase `i+1` could
//! be stranded if the adversary pushed everyone else to finish in phase
//! `i` (the proof of Lemma 4 implicitly counts the finishers' farewell
//! toward the next phase's round-2 tally). We therefore have a finishing
//! node stand through **both** rounds of phase `i+1` — rebroadcasting
//! `(val, decided=true)` and then halting — which is the minimal
//! completion under which Lemma 4's statement ("v terminates in phase
//! i+1, everyone else by phase i+2") holds verbatim. See DESIGN.md.

use crate::msg::{ba_code, BaMsg, SubRound};
use crate::params::{BaConfig, CoinRoundMode, CoinSource, TerminationMode};
use crate::view::BaNodeView;
use aba_sim::{Emission, Inbox, NodeId, Protocol, Round};
use rand::{Rng, RngCore};

/// One node of the committee-based agreement protocol (Algorithm 3).
#[derive(Debug, Clone)]
pub struct CommitteeBa {
    cfg: BaConfig,
    id: NodeId,
    input: bool,
    val: bool,
    decided: bool,
    /// Phase at which case 1 fired, if it has.
    finish_phase: Option<u64>,
    /// Current phase (updated on emit; 1-based).
    cur_phase: u64,
    /// This node's flip for the current phase, if it is a committee
    /// member and has flipped.
    flip: Option<i8>,
    /// Literal coin-round mode: whether case 3 applies and the subround-3
    /// tally is still needed.
    need_coin: bool,
    /// Number of phases in which this node fell through to the coin.
    coin_phases: u64,
    out: Option<bool>,
    halted: bool,
}

impl CommitteeBa {
    /// Creates node `id` with the given binary `input`.
    pub fn new(cfg: BaConfig, id: NodeId, input: bool) -> Self {
        CommitteeBa {
            cfg,
            id,
            input,
            val: input,
            decided: false,
            finish_phase: None,
            cur_phase: 1,
            flip: None,
            need_coin: false,
            coin_phases: 0,
            out: None,
            halted: false,
        }
    }

    /// Builds the whole network from an input assignment.
    pub fn network(cfg: &BaConfig, inputs: &[bool]) -> Vec<CommitteeBa> {
        assert_eq!(inputs.len(), cfg.n, "one input per node");
        inputs
            .iter()
            .enumerate()
            .map(|(i, b)| CommitteeBa::new(cfg.clone(), NodeId::new(i as u32), *b))
            .collect()
    }

    /// The node's input bit.
    pub fn input(&self) -> bool {
        self.input
    }

    /// The node ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// How many phases this node resolved via the fallback coin.
    pub fn coin_phases(&self) -> u64 {
        self.coin_phases
    }

    fn is_flipper(&self, phase: u64) -> bool {
        matches!(self.cfg.coin, CoinSource::Committee)
            && self
                .cfg
                .plan
                .is_member(self.id, self.cfg.committee_for_phase(phase))
    }

    /// Ends the phase: in Whp mode, the schedule runs out after
    /// `cfg.phases` phases and the node decides its current value
    /// (Algorithm 3 line 32).
    fn end_phase(&mut self, phase: u64) {
        if self.cfg.mode == TerminationMode::Whp && phase >= self.cfg.phases {
            self.out = Some(self.val);
            self.halted = true;
        }
    }

    /// Applies the case-3 coin for `phase` given the tallied committee
    /// sum.
    fn apply_coin(&mut self, phase: u64, committee_sum: i64, rng: &mut dyn RngCore) {
        self.coin_phases += 1;
        self.val = match self.cfg.coin {
            CoinSource::Committee => committee_sum >= 0,
            CoinSource::Dealer { .. } => self.cfg.dealer_coin(phase).expect("dealer source"),
            // Ben-Or baseline: a local coin nobody else sees (drawn at
            // receive time, so even a rushing adversary learns it only
            // next round).
            CoinSource::Private => rng.gen::<bool>(),
        };
        self.decided = false;
    }

    /// Word-parallel `[false, true]` tally of matching messages on the
    /// packed plane, or `None` on the dense plane (callers fall back to
    /// iteration, keeping dense runs byte-identical).
    fn packed_val_counts(
        inbox: &Inbox<'_, BaMsg>,
        query: impl Fn(bool) -> Option<(u32, u32)>,
    ) -> Option<[usize; 2]> {
        let (m0, b0) = query(false)?;
        let (m1, b1) = query(true)?;
        Some([
            inbox.packed_match_count(m0, b0, None)?,
            inbox.packed_match_count(m1, b1, None)?,
        ])
    }

    /// Word-parallel clamped-flip sum (`#(+1) − #(−1)`) over committee
    /// senders on the packed plane, or `None` on the dense plane.
    fn packed_flip_sum(
        &self,
        inbox: &Inbox<'_, BaMsg>,
        committee: usize,
        query: impl Fn(bool) -> Option<(u32, u32)>,
    ) -> Option<i64> {
        let senders = self.cfg.plan.id_range(committee);
        let (mp, bp) = query(true)?;
        let (mn, bn) = query(false)?;
        let plus = inbox.packed_match_count(mp, bp, Some(senders.clone()))?;
        let minus = inbox.packed_match_count(mn, bn, Some(senders))?;
        Some(plus as i64 - minus as i64)
    }

    fn tally_round1(&mut self, phase: u64, inbox: &Inbox<'_, BaMsg>) {
        let packed =
            Self::packed_val_counts(inbox, |v| ba_code::phase_val_query(phase, SubRound::One, v));
        let cnt = packed.unwrap_or_else(|| {
            let mut cnt = [0usize; 2];
            for (_, m) in inbox.iter() {
                if let BaMsg::Phase {
                    phase: p,
                    sub: SubRound::One,
                    val,
                    ..
                } = m
                {
                    if *p == phase {
                        cnt[*val as usize] += 1;
                    }
                }
            }
            cnt
        });
        let n_t = self.cfg.n - self.cfg.t;
        // At most one side can reach n−t (2(n−t) > n for t < n/2).
        if cnt[1] >= n_t {
            self.val = true;
            self.decided = true;
        } else if cnt[0] >= n_t {
            self.val = false;
            self.decided = true;
        } else {
            self.decided = false;
        }
    }

    fn tally_round2(&mut self, phase: u64, inbox: &Inbox<'_, BaMsg>, rng: &mut dyn RngCore) {
        let committee = self.cfg.committee_for_phase(phase);
        let piggyback_coin = matches!(self.cfg.coin, CoinSource::Committee)
            && self.cfg.coin_round == CoinRoundMode::Piggyback;

        let packed = Self::packed_val_counts(inbox, |v| {
            ba_code::decided_val_query(phase, SubRound::Two, v)
        })
        .and_then(|cnt_true| {
            let sum = if piggyback_coin {
                self.packed_flip_sum(inbox, committee, |pos| {
                    ba_code::piggyback_flip_query(phase, SubRound::Two, pos)
                })?
            } else {
                0
            };
            Some((cnt_true, sum))
        });
        let (cnt_true, sum) = packed.unwrap_or_else(|| {
            let mut cnt_true = [0usize; 2];
            let mut sum: i64 = 0;
            for (sender, m) in inbox.iter() {
                if let BaMsg::Phase {
                    phase: p,
                    sub: SubRound::Two,
                    val,
                    decided,
                    ..
                } = m
                {
                    if *p != phase {
                        continue;
                    }
                    if *decided {
                        cnt_true[*val as usize] += 1;
                    }
                    if piggyback_coin && self.cfg.plan.is_member(sender, committee) {
                        if let Some(f) = m.clamped_flip() {
                            sum += f;
                        }
                    }
                }
            }
            (cnt_true, sum)
        });

        let n_t = self.cfg.n - self.cfg.t;
        let t1 = self.cfg.t + 1;
        // Only one value can clear either threshold against honest
        // behaviour (Lemma 3); prefer the better-supported side if a
        // malfunctioning test adversary ever violates that.
        let better = if cnt_true[1] >= cnt_true[0] { 1 } else { 0 };
        if cnt_true[better] >= n_t {
            self.val = better == 1;
            self.decided = true;
            self.finish_phase = Some(phase);
            self.finish_tail(phase);
        } else if cnt_true[better] >= t1 {
            self.val = better == 1;
            self.decided = true;
            self.finish_tail(phase);
        } else {
            match self.cfg.coin_round {
                CoinRoundMode::Piggyback => {
                    self.apply_coin(phase, sum, rng);
                    self.end_phase(phase);
                }
                CoinRoundMode::Literal => {
                    self.need_coin = true;
                }
            }
        }
    }

    /// Phase bookkeeping shared by cases 1 and 2 after round 2.
    fn finish_tail(&mut self, phase: u64) {
        match self.cfg.coin_round {
            CoinRoundMode::Piggyback => self.end_phase(phase),
            CoinRoundMode::Literal => {
                // Wait out the coin round in lockstep (nothing to tally).
                self.need_coin = false;
            }
        }
    }

    fn tally_round3(&mut self, phase: u64, inbox: &Inbox<'_, BaMsg>, rng: &mut dyn RngCore) {
        if self.need_coin {
            let committee = self.cfg.committee_for_phase(phase);
            let packed = self.packed_flip_sum(inbox, committee, |pos| {
                ba_code::standalone_flip_query(phase, pos)
            });
            let sum = packed.unwrap_or_else(|| {
                let mut sum: i64 = 0;
                for (sender, m) in inbox.iter() {
                    if let BaMsg::Flip { phase: p, .. } = m {
                        if *p == phase && self.cfg.plan.is_member(sender, committee) {
                            if let Some(f) = m.clamped_flip() {
                                sum += f;
                            }
                        }
                    }
                }
                sum
            });
            self.apply_coin(phase, sum, rng);
            self.need_coin = false;
        }
        self.end_phase(phase);
    }
}

impl Protocol for CommitteeBa {
    type Msg = BaMsg;

    fn emit(&mut self, round: Round, rng: &mut dyn RngCore) -> Emission<BaMsg> {
        let (phase, sub) = self.cfg.schedule(round);
        self.cur_phase = phase;
        let last_sub = self.cfg.rounds_per_phase();

        // Farewell phase: a node that set `finish` in phase fp stands
        // through both rounds of phase fp+1, then halts.
        if let Some(fp) = self.finish_phase {
            if phase > fp {
                let msg = BaMsg::Phase {
                    phase,
                    sub: SubRound::from_index(sub),
                    val: self.val,
                    decided: true,
                    flip: None,
                };
                if sub == last_sub {
                    self.out = Some(self.val);
                    self.halted = true;
                }
                return Emission::Broadcast(msg);
            }
        }

        match sub {
            1 => {
                self.flip = None;
                Emission::Broadcast(BaMsg::Phase {
                    phase,
                    sub: SubRound::One,
                    val: self.val,
                    decided: self.decided,
                    flip: None,
                })
            }
            2 => {
                let flip =
                    if self.cfg.coin_round == CoinRoundMode::Piggyback && self.is_flipper(phase) {
                        let f: i8 = if rng.gen::<bool>() { 1 } else { -1 };
                        self.flip = Some(f);
                        Some(f)
                    } else {
                        None
                    };
                Emission::Broadcast(BaMsg::Phase {
                    phase,
                    sub: SubRound::Two,
                    val: self.val,
                    decided: self.decided,
                    flip,
                })
            }
            3 => {
                if self.is_flipper(phase) {
                    let f: i8 = if rng.gen::<bool>() { 1 } else { -1 };
                    self.flip = Some(f);
                    Emission::Broadcast(BaMsg::Flip { phase, value: f })
                } else {
                    Emission::Silent
                }
            }
            _ => unreachable!("subround bounded by rounds_per_phase"),
        }
    }

    fn receive(&mut self, round: Round, inbox: Inbox<'_, BaMsg>, rng: &mut dyn RngCore) {
        let (phase, sub) = self.cfg.schedule(round);
        if let Some(fp) = self.finish_phase {
            if phase > fp {
                return; // farewell phase: ignore traffic
            }
        }
        match sub {
            1 => self.tally_round1(phase, &inbox),
            2 => self.tally_round2(phase, &inbox, rng),
            3 => self.tally_round3(phase, &inbox, rng),
            _ => unreachable!(),
        }
    }

    fn output(&self) -> Option<bool> {
        self.out
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

impl BaNodeView for CommitteeBa {
    fn ba_val(&self) -> bool {
        self.val
    }
    fn ba_decided(&self) -> bool {
        self.decided
    }
    fn ba_finished(&self) -> bool {
        self.finish_phase.is_some()
    }
    fn ba_phase(&self) -> u64 {
        self.cur_phase
    }
    fn ba_flip(&self) -> Option<i8> {
        self.flip
    }
    fn ba_config(&self) -> &BaConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::adversary::Benign;
    use aba_sim::{SimConfig, Simulation, Verdict};

    fn run(cfg: BaConfig, inputs: Vec<bool>, seed: u64) -> (aba_sim::RunReport, Verdict) {
        let n = cfg.n;
        let t = cfg.t;
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(n, t).with_seed(seed).with_max_rounds(2_000);
        let report = Simulation::new(sim_cfg, nodes, Benign).run();
        let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
        (report, verdict)
    }

    #[test]
    fn fault_free_uniform_inputs_decide_fast() {
        for b in [false, true] {
            let cfg = BaConfig::paper(16, 5, 2.0).unwrap();
            let (report, verdict) = run(cfg, vec![b; 16], 1);
            assert!(verdict.is_correct(), "verdict: {verdict:?}");
            assert_eq!(verdict.decision, Some(b));
            assert!(report.all_halted);
            // Phase 1 decides; farewell through phase 2; ≤ 2 phases = 4 rounds.
            assert!(report.rounds <= 4, "took {} rounds", report.rounds);
        }
    }

    #[test]
    fn fault_free_split_inputs_agree() {
        for seed in 0..10 {
            let cfg = BaConfig::paper(16, 5, 2.0).unwrap();
            let inputs: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(cfg, inputs, seed);
            assert!(report.all_halted, "seed {seed}");
            assert!(verdict.agreement, "seed {seed}: {verdict:?}");
            assert!(verdict.termination);
        }
    }

    #[test]
    fn las_vegas_terminates_fault_free() {
        for seed in 0..10 {
            let cfg = BaConfig::paper_las_vegas(16, 5, 2.0).unwrap();
            let inputs: Vec<bool> = (0..16).map(|i| i < 8).collect();
            let (report, verdict) = run(cfg, inputs, seed);
            assert!(report.all_halted, "seed {seed}");
            assert!(verdict.agreement && verdict.termination, "seed {seed}");
        }
    }

    #[test]
    fn literal_coin_round_mode_agrees_too() {
        for seed in 0..10 {
            let cfg = BaConfig::paper(16, 5, 2.0)
                .unwrap()
                .with_coin_round(CoinRoundMode::Literal);
            let inputs: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
            let (report, verdict) = run(cfg, inputs, seed);
            assert!(report.all_halted, "seed {seed}");
            assert!(verdict.agreement, "seed {seed}: {verdict:?}");
        }
    }

    #[test]
    fn rabin_dealer_agrees_and_is_quick() {
        let mut total_rounds = 0;
        for seed in 0..20 {
            let cfg = BaConfig::rabin_dealer(16, 5, 12345).unwrap();
            let inputs: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(cfg, inputs, seed);
            assert!(report.all_halted && verdict.agreement, "seed {seed}");
            total_rounds += report.rounds;
        }
        // Perfect shared coin: expected ~2 phases to align + 2 farewell
        // phases ⇒ ~8 rounds on average is ample.
        assert!(
            total_rounds / 20 <= 12,
            "dealer coin should settle fast, avg {}",
            total_rounds / 20
        );
    }

    #[test]
    fn chor_coan_configuration_agrees() {
        for seed in 0..5 {
            let cfg = BaConfig::chor_coan(32, 5, 1.0).unwrap();
            let inputs: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(cfg, inputs, seed);
            assert!(report.all_halted && verdict.agreement, "seed {seed}");
        }
    }

    #[test]
    fn validity_holds_for_every_seed_and_size() {
        for (n, t) in [(4, 1), (7, 2), (10, 3), (16, 5), (31, 10)] {
            for seed in 0..3 {
                let cfg = BaConfig::paper(n, t, 2.0).unwrap();
                let (_, verdict) = run(cfg, vec![true; n], seed);
                assert_eq!(verdict.validity, Some(true), "n={n} t={t} seed={seed}");
            }
        }
    }

    #[test]
    fn tiny_network_n1() {
        let cfg = BaConfig::paper(1, 0, 1.0).unwrap();
        let (report, verdict) = run(cfg, vec![true], 0);
        assert!(report.all_halted);
        assert_eq!(verdict.decision, Some(true));
    }

    #[test]
    fn whp_mode_runs_at_most_c_plus_farewell_phases() {
        let cfg = BaConfig::paper(32, 10, 2.0).unwrap();
        let budget = cfg.whp_round_budget() + 2 * cfg.rounds_per_phase();
        let inputs: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        let (report, _) = run(cfg, inputs, 3);
        assert!(
            report.rounds <= budget,
            "rounds {} exceed whp budget {budget}",
            report.rounds
        );
    }

    #[test]
    fn coin_phase_counting_is_exposed() {
        let cfg = BaConfig::paper(16, 5, 2.0).unwrap();
        let inputs: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(16, 5).with_seed(11);
        let mut sim = Simulation::new(sim_cfg, nodes, Benign);
        sim.step(); // round 1 of phase 1: split inputs -> nobody decides
        sim.step(); // round 2: no True messages -> everyone coins
        assert!(sim.nodes().iter().all(|nd| nd.coin_phases() == 1));
    }

    #[test]
    fn view_trait_exposes_state() {
        let cfg = BaConfig::paper(16, 5, 2.0).unwrap();
        let node = CommitteeBa::new(cfg.clone(), NodeId::new(3), true);
        assert!(node.ba_val());
        assert!(!node.ba_decided());
        assert!(!node.ba_finished());
        assert_eq!(node.ba_phase(), 1);
        assert_eq!(node.ba_flip(), None);
        assert_eq!(node.ba_config(), &cfg);
        assert!(node.input());
        assert_eq!(node.id(), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn network_checks_input_length() {
        let cfg = BaConfig::paper(16, 5, 2.0).unwrap();
        let _ = CommitteeBa::network(&cfg, &[true; 4]);
    }
}
