//! # aba-agreement — Byzantine agreement protocols
//!
//! The paper's primary contribution and the baselines it is measured
//! against, all as [`aba_sim::Protocol`] state machines:
//!
//! * [`CommitteeBa`] — **Algorithm 3** of Dufoulon & Pandurangan (PODC
//!   2025): Rabin-style two-round phases with thresholds `n−t` / `t+1`,
//!   where phase `i`'s fallback coin is flipped by committee `i`
//!   (Algorithm 2). Runs in `O(min{t²·log n/n, t/log n})` rounds w.h.p.
//!   against an adaptive rushing full-information adversary, tolerating
//!   `t < n/3`.
//!   The same state machine, differently parameterized, yields:
//!   - the **Las Vegas variant** (Section 3.2): loop over committees
//!     until the early-termination mechanism fires;
//!   - the **Chor–Coan (1985) baseline**: committees forced to size
//!     `Θ(log n)` regardless of `t` (this is exactly footnote 3's
//!     rushing-hardened reading of Chor–Coan);
//!   - **Rabin's protocol**: the fallback coin comes from a trusted
//!     dealer instead of a committee.
//! * [`PhaseKingBa`] — the deterministic `O(t)`-round baseline
//!   (Berman–Garay–Perry phase king, resilience `t < n/3`), standing in
//!   for the deterministic protocols [9, 13] the paper cites.
//!
//! Configuration lives in [`BaConfig`]; adversaries that understand these
//! protocols' internals live in `aba-attacks`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod committee_ba;
pub mod king_saia;
pub mod msg;
pub mod params;
pub mod phase_king;
pub mod sampling_majority;
pub mod view;

pub use committee_ba::CommitteeBa;
pub use king_saia::{KingSaiaNode, KsMsg};
pub use msg::{ba_code, BaMsg, PkMsg, SubRound};
pub use params::{BaConfig, CoinRoundMode, CoinSource, TerminationMode};
pub use phase_king::PhaseKingBa;
pub use sampling_majority::{SamplingMajorityNode, SmMsg};
pub use view::BaNodeView;

/// Common imports.
pub mod prelude {
    pub use crate::committee_ba::CommitteeBa;
    pub use crate::king_saia::{KingSaiaNode, KsMsg};
    pub use crate::msg::{ba_code, BaMsg, PkMsg, SubRound};
    pub use crate::params::{BaConfig, CoinRoundMode, CoinSource, TerminationMode};
    pub use crate::phase_king::PhaseKingBa;
    pub use crate::sampling_majority::{SamplingMajorityNode, SmMsg};
    pub use crate::view::BaNodeView;
}
