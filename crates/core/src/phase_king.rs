//! Phase-King: the deterministic `O(t)`-round baseline.
//!
//! Berman–Garay–Perry's algorithm with optimal resilience `t < n/3`,
//! standing in for the deterministic protocols [9, 13] the paper cites
//! (`t + 1` phases of 3 rounds each, polynomial messages). Against *any*
//! adversary it terminates in exactly `3(t+1)` rounds — the `O(t)` curve
//! the randomized protocols are measured against.
//!
//! Per phase `k` (king = node `k − 1`):
//!
//! 1. broadcast `val`;
//! 2. if `≥ n − t` received round-1 values equal `y`, broadcast
//!    "propose `y`". If more than `t` proposals for `y` arrive, set
//!    `val := y`; remember the proposal count as `support`;
//! 3. the king broadcasts its `val`; nodes with `support < n − t` adopt
//!    the king's value.
//!
//! Agreement follows because at most one value can gather honest
//! proposals per phase (`n > 3t`), and some phase has an honest king.

use crate::msg::PkMsg;
use aba_sim::{Emission, Inbox, NodeId, Protocol, Round};
use rand::RngCore;

/// One node of the Phase-King protocol.
#[derive(Debug, Clone)]
pub struct PhaseKingBa {
    id: NodeId,
    n: usize,
    t: usize,
    input: bool,
    val: bool,
    /// Proposal staged by round-1 processing, emitted in round 2.
    pending_proposal: Option<bool>,
    /// Number of proposals received for the adopted value this phase.
    support: usize,
    out: Option<bool>,
    halted: bool,
}

impl PhaseKingBa {
    /// Creates node `id` of an `n`-node network tolerating `t < n/3`
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1` (the protocol's resilience bound) or if
    /// `t + 1 > n` (there must be enough kings).
    pub fn new(id: NodeId, n: usize, t: usize, input: bool) -> Self {
        assert!(n > 3 * t, "phase king requires n ≥ 3t+1");
        PhaseKingBa {
            id,
            n,
            t,
            input,
            val: input,
            pending_proposal: None,
            support: 0,
            out: None,
            halted: false,
        }
    }

    /// Builds the whole network from an input assignment.
    pub fn network(n: usize, t: usize, inputs: &[bool]) -> Vec<PhaseKingBa> {
        assert_eq!(inputs.len(), n, "one input per node");
        inputs
            .iter()
            .enumerate()
            .map(|(i, b)| PhaseKingBa::new(NodeId::new(i as u32), n, t, *b))
            .collect()
    }

    /// The node's input.
    pub fn input(&self) -> bool {
        self.input
    }

    /// Total engine rounds the protocol runs: `3(t+1)`.
    pub fn total_rounds(t: usize) -> u64 {
        3 * (t as u64 + 1)
    }

    /// Phase (1-based) and subround (1-based) for an engine round.
    fn schedule(round: Round) -> (u64, u64) {
        (round.index() / 3 + 1, round.index() % 3 + 1)
    }

    /// The king of a phase: node `phase − 1`.
    fn king(&self, phase: u64) -> NodeId {
        NodeId::new(((phase - 1) % self.n as u64) as u32)
    }
}

impl Protocol for PhaseKingBa {
    type Msg = PkMsg;

    fn emit(&mut self, round: Round, _rng: &mut dyn RngCore) -> Emission<PkMsg> {
        let (phase, sub) = Self::schedule(round);
        match sub {
            1 => Emission::Broadcast(PkMsg::Val { phase, v: self.val }),
            2 => match self.pending_proposal {
                Some(v) => Emission::Broadcast(PkMsg::Propose { phase, v }),
                None => Emission::Silent,
            },
            3 => {
                if self.king(phase) == self.id {
                    Emission::Broadcast(PkMsg::King { phase, v: self.val })
                } else {
                    Emission::Silent
                }
            }
            _ => unreachable!(),
        }
    }

    fn receive(&mut self, round: Round, inbox: Inbox<'_, PkMsg>, _rng: &mut dyn RngCore) {
        let (phase, sub) = Self::schedule(round);
        match sub {
            1 => {
                let mut cnt = [0usize; 2];
                for (_, m) in inbox.iter() {
                    if let PkMsg::Val { phase: p, v } = m {
                        if *p == phase {
                            cnt[*v as usize] += 1;
                        }
                    }
                }
                let n_t = self.n - self.t;
                self.pending_proposal = if cnt[1] >= n_t {
                    Some(true)
                } else if cnt[0] >= n_t {
                    Some(false)
                } else {
                    None
                };
            }
            2 => {
                let mut cnt = [0usize; 2];
                for (_, m) in inbox.iter() {
                    if let PkMsg::Propose { phase: p, v } = m {
                        if *p == phase {
                            cnt[*v as usize] += 1;
                        }
                    }
                }
                // At most one value can have more than t proposals from
                // honest senders (n > 3t); adopt it and record support.
                let better = if cnt[1] >= cnt[0] { 1 } else { 0 };
                if cnt[better] > self.t {
                    self.val = better == 1;
                }
                self.support = cnt[better];
            }
            3 => {
                if self.support < self.n - self.t {
                    // Weakly supported: defer to the king.
                    let king = self.king(phase);
                    if let Some(PkMsg::King { phase: p, v }) = inbox.from(king) {
                        if *p == phase {
                            self.val = *v;
                        }
                    }
                    // A silent (crashed/Byzantine) king leaves val as is.
                }
                if phase == self.t as u64 + 1 {
                    self.out = Some(self.val);
                    self.halted = true;
                }
            }
            _ => unreachable!(),
        }
    }

    fn output(&self) -> Option<bool> {
        self.out
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::adversary::Benign;
    use aba_sim::{SimConfig, Simulation, Verdict};

    fn run(n: usize, t: usize, inputs: Vec<bool>, seed: u64) -> (aba_sim::RunReport, Verdict) {
        let nodes = PhaseKingBa::network(n, t, &inputs);
        let cfg = SimConfig::new(n, t).with_seed(seed);
        let report = Simulation::new(cfg, nodes, Benign).run();
        let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
        (report, verdict)
    }

    #[test]
    fn uniform_inputs_decide_same_value() {
        for b in [false, true] {
            let (report, verdict) = run(10, 3, vec![b; 10], 0);
            assert!(report.all_halted);
            assert_eq!(verdict.validity, Some(true));
            assert_eq!(verdict.decision, Some(b));
            assert_eq!(report.rounds, PhaseKingBa::total_rounds(3));
        }
    }

    #[test]
    fn split_inputs_agree_fault_free() {
        let inputs: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let (report, verdict) = run(10, 3, inputs, 1);
        assert!(report.all_halted && verdict.agreement);
    }

    #[test]
    fn t_zero_single_phase() {
        let (report, verdict) = run(4, 0, vec![true, false, true, false], 0);
        assert!(report.all_halted);
        assert!(verdict.agreement);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn rounds_are_exactly_three_t_plus_one() {
        let (report, _) = run(13, 4, vec![true; 13], 0);
        assert_eq!(report.rounds, 15);
    }

    #[test]
    #[should_panic(expected = "3t+1")]
    fn resilience_bound_enforced() {
        let _ = PhaseKingBa::new(NodeId::new(0), 9, 3, true);
    }

    #[test]
    fn survives_silent_faults() {
        use aba_adversary::{StaticBehavior, StaticByzantine};
        let n = 10;
        let t = 3;
        let inputs = vec![true; n];
        let nodes = PhaseKingBa::network(n, t, &inputs);
        let cfg = SimConfig::new(n, t).with_seed(2);
        // Crash the first 3 nodes — including the kings of phases 1–3.
        let report = Simulation::new(
            cfg,
            nodes,
            StaticByzantine::first_t(3, StaticBehavior::Silence),
        )
        .run();
        let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
        assert!(report.all_halted);
        assert_eq!(verdict.validity, Some(true), "{verdict:?}");
    }
}
