//! Read-only protocol-state view for full-information adversaries.
//!
//! The paper's adversary knows "the entire state of the network at every
//! round". The simulator already hands adversaries `&[P]`; this trait is
//! the typed lens protocol-aware attacks use to read the agreement
//! state without depending on a concrete node struct.

use crate::params::BaConfig;

/// State every Byzantine-agreement node in this workspace exposes to the
/// (full-information) adversary.
pub trait BaNodeView {
    /// Current value `val_v`.
    fn ba_val(&self) -> bool;
    /// Current `decided_v` flag.
    fn ba_decided(&self) -> bool;
    /// Current `finish_v` flag.
    fn ba_finished(&self) -> bool;
    /// The phase the node is in (1-based).
    fn ba_phase(&self) -> u64;
    /// The node's current-phase coin flip, if it has flipped one.
    fn ba_flip(&self) -> Option<i8>;
    /// The protocol configuration (shared by all nodes of a run).
    fn ba_config(&self) -> &BaConfig;
}
