//! Sampling-majority convergence (related work, Section 1.3).
//!
//! The paper contrasts its committee coin with the protocol of
//! Augustine, Pandurangan and Robinson (reference &#91;3&#93; of the paper): "in each round, each node
//! samples values from two random nodes and takes the majority of its
//! value and the two sampled values; this is shown to converge to a
//! common value in polylog(n) rounds if the number of Byzantine nodes is
//! O(√n / polylog n)" — and notes both analyses rest on
//! anti-concentration bounds.
//!
//! We implement that dynamic as a two-round query/reply iteration on the
//! complete network. It provides **almost-everywhere** agreement (a
//! `1 − o(1)` fraction of honest nodes converge) rather than Definition
//! 1's everywhere-agreement, with only `O(n)` messages per round instead
//! of `O(n²)` — a qualitatively different trade-off that experiment E13
//! measures against the paper's protocol.

use aba_sim::{Emission, Inbox, Message, NodeId, Protocol, Round};
use rand::{Rng, RngCore};

/// Wire format of the sampling protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmMsg {
    /// "Send me your value" (iteration-tagged).
    Query {
        /// Iteration number (1-based).
        iter: u64,
    },
    /// A value reply to a query of the same iteration.
    Reply {
        /// Iteration number (1-based).
        iter: u64,
        /// The replier's current value.
        val: bool,
    },
}

impl Message for SmMsg {
    fn bit_size(&self) -> usize {
        let iter = match self {
            SmMsg::Query { iter } | SmMsg::Reply { iter, .. } => *iter,
        };
        // tag (1) + iteration counter + value (1 for replies).
        1 + (64 - iter.max(1).leading_zeros()) as usize
            + usize::from(matches!(self, SmMsg::Reply { .. }))
    }
}

/// One node of the sampling-majority protocol.
///
/// Each iteration spans two engine rounds: queries out, replies back,
/// then `val := majority(own, sampled₁, sampled₂)`. After the configured
/// number of iterations the node outputs its value.
#[derive(Debug, Clone)]
pub struct SamplingMajorityNode {
    id: NodeId,
    n: usize,
    iterations: u64,
    val: bool,
    /// Nodes queried this iteration (replies from others are ignored).
    targets: [NodeId; 2],
    /// Who queried us in the current iteration.
    queriers: Vec<NodeId>,
    out: Option<bool>,
    halted: bool,
}

impl SamplingMajorityNode {
    /// Creates node `id` of `n` with the given input, running for
    /// `iterations` sampling iterations.
    pub fn new(id: NodeId, n: usize, iterations: u64, input: bool) -> Self {
        assert!(n >= 1 && iterations >= 1);
        SamplingMajorityNode {
            id,
            n,
            iterations,
            val: input,
            targets: [id, id],
            queriers: Vec::new(),
            out: None,
            halted: false,
        }
    }

    /// The iteration count the analysis of reference &#91;3&#93; suggests: `Θ(log² n)`.
    pub fn recommended_iterations(n: usize) -> u64 {
        let l = (n.max(2) as f64).log2();
        (2.0 * l * l).ceil() as u64
    }

    /// Builds the whole network from an input assignment.
    pub fn network(n: usize, iterations: u64, inputs: &[bool]) -> Vec<SamplingMajorityNode> {
        assert_eq!(inputs.len(), n, "one input per node");
        inputs
            .iter()
            .enumerate()
            .map(|(i, b)| SamplingMajorityNode::new(NodeId::new(i as u32), n, iterations, *b))
            .collect()
    }

    /// Current value (exposed for adversaries and experiments — the
    /// full-information model).
    pub fn val(&self) -> bool {
        self.val
    }

    /// The node ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    fn schedule(round: Round) -> (u64, u64) {
        (round.index() / 2 + 1, round.index() % 2 + 1)
    }
}

impl Protocol for SamplingMajorityNode {
    type Msg = SmMsg;

    fn emit(&mut self, round: Round, rng: &mut dyn RngCore) -> Emission<SmMsg> {
        let (iter, sub) = Self::schedule(round);
        match sub {
            1 => {
                // Sample two uniform nodes (with replacement, as in [3]).
                let a = NodeId::new(rng.gen_range(0..self.n as u32));
                let b = NodeId::new(rng.gen_range(0..self.n as u32));
                self.targets = [a, b];
                self.queriers.clear();
                let q = SmMsg::Query { iter };
                if a == b {
                    Emission::PerRecipient(vec![(a, q)])
                } else {
                    Emission::PerRecipient(vec![(a, q), (b, q)])
                }
            }
            2 => {
                let reply = SmMsg::Reply {
                    iter,
                    val: self.val,
                };
                Emission::PerRecipient(self.queriers.iter().map(|q| (*q, reply)).collect())
            }
            _ => unreachable!(),
        }
    }

    fn receive(&mut self, round: Round, inbox: Inbox<'_, SmMsg>, _rng: &mut dyn RngCore) {
        let (iter, sub) = Self::schedule(round);
        match sub {
            1 => {
                self.queriers = inbox
                    .iter()
                    .filter(|(_, m)| matches!(m, SmMsg::Query { iter: i } if *i == iter))
                    .map(|(s, _)| s)
                    .collect();
            }
            2 => {
                // Majority of own value and the replies from the two
                // sampled nodes (a sampled node that stays silent simply
                // contributes no vote; ties keep the current value).
                let mut ones = usize::from(self.val);
                let mut votes = 1usize;
                for target in self.targets {
                    if let Some(SmMsg::Reply { iter: i, val }) = inbox.from(target) {
                        if *i == iter {
                            votes += 1;
                            ones += usize::from(*val);
                        }
                    }
                }
                if 2 * ones > votes {
                    self.val = true;
                } else if 2 * ones < votes {
                    self.val = false;
                }
                if iter >= self.iterations {
                    self.out = Some(self.val);
                    self.halted = true;
                }
            }
            _ => unreachable!(),
        }
    }

    fn output(&self) -> Option<bool> {
        self.out
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::adversary::Benign;
    use aba_sim::{SimConfig, Simulation};

    fn honest_agreement_fraction(report: &aba_sim::RunReport) -> f64 {
        let outs: Vec<bool> = report
            .outputs
            .iter()
            .zip(&report.honest)
            .filter(|(_, h)| **h)
            .filter_map(|(o, _)| *o)
            .collect();
        let ones = outs.iter().filter(|b| **b).count();
        ones.max(outs.len() - ones) as f64 / outs.len() as f64
    }

    #[test]
    fn uniform_inputs_stay_put() {
        let n = 32;
        let iters = SamplingMajorityNode::recommended_iterations(n);
        let nodes = SamplingMajorityNode::network(n, iters, &vec![true; n]);
        let report = Simulation::new(SimConfig::new(n, 0).with_seed(1), nodes, Benign).run();
        assert!(report.all_halted);
        assert!(report.outputs.iter().all(|o| *o == Some(true)));
        assert_eq!(report.rounds, 2 * iters);
    }

    #[test]
    fn split_inputs_converge_fault_free() {
        let n = 64;
        let iters = SamplingMajorityNode::recommended_iterations(n);
        let mut converged = 0;
        for seed in 0..10 {
            let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let nodes = SamplingMajorityNode::network(n, iters, &inputs);
            let report = Simulation::new(SimConfig::new(n, 0).with_seed(seed), nodes, Benign).run();
            if honest_agreement_fraction(&report) >= 0.99 {
                converged += 1;
            }
        }
        assert!(converged >= 8, "converged in only {converged}/10 runs");
    }

    #[test]
    fn lopsided_inputs_converge_to_the_majority() {
        let n = 64;
        let iters = SamplingMajorityNode::recommended_iterations(n);
        let mut to_majority = 0;
        for seed in 0..10 {
            // 75% ones: sampling dynamics strongly favor the majority.
            let inputs: Vec<bool> = (0..n).map(|i| i % 4 != 0).collect();
            let nodes = SamplingMajorityNode::network(n, iters, &inputs);
            let report =
                Simulation::new(SimConfig::new(n, 0).with_seed(seed + 100), nodes, Benign).run();
            let ones = report.outputs.iter().filter(|o| **o == Some(true)).count();
            if ones as f64 >= 0.95 * n as f64 {
                to_majority += 1;
            }
        }
        assert!(
            to_majority >= 8,
            "majority won in only {to_majority}/10 runs"
        );
    }

    #[test]
    fn message_complexity_is_linear_per_round() {
        let n = 128;
        let nodes = SamplingMajorityNode::network(n, 4, &vec![false; n]);
        let report = Simulation::new(SimConfig::new(n, 0).with_seed(3), nodes, Benign).run();
        // Per iteration: ≤ 2n queries + ≤ 2n replies over 2 rounds.
        let per_round = report.metrics.total_messages as f64 / report.rounds as f64;
        assert!(
            per_round <= 2.0 * n as f64,
            "sampling should be O(n) messages/round, got {per_round}"
        );
    }

    #[test]
    fn recommended_iterations_grows_polylog() {
        assert!(SamplingMajorityNode::recommended_iterations(16) >= 16);
        let small = SamplingMajorityNode::recommended_iterations(64);
        let large = SamplingMajorityNode::recommended_iterations(4096);
        assert!(large > small);
        assert!(large < 4096, "polylog, not polynomial");
    }
}
