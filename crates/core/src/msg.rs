//! Wire formats of the agreement protocols, with CONGEST-honest bit
//! sizes.

use aba_sim::Message;

/// Which communication round of a phase a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubRound {
    /// First broadcast/receive round of the phase (Algorithm 3 lines
    /// 8–16).
    One,
    /// Second broadcast/receive round (lines 19–31).
    Two,
    /// The separate coin-flip round used only in the literal (non
    /// piggybacked) reading of the paper.
    Three,
}

impl SubRound {
    /// Subround from a 1-based index.
    pub fn from_index(i: u64) -> SubRound {
        match i {
            1 => SubRound::One,
            2 => SubRound::Two,
            3 => SubRound::Three,
            _ => panic!("subround index {i} out of range"),
        }
    }

    /// 1-based index.
    pub fn index(self) -> u64 {
        match self {
            SubRound::One => 1,
            SubRound::Two => 2,
            SubRound::Three => 3,
        }
    }
}

/// Bits needed to encode a value in `0..=v` (at least 1).
fn bits_for(v: u64) -> usize {
    (64 - v.max(1).leading_zeros()) as usize
}

/// Message of the committee-based agreement protocol (Algorithm 3).
///
/// The paper's messages are `(i, round, val, decided)` tuples; in the
/// default *piggyback* mode, committee members attach their ±1 coin
/// contribution to the round-2 message (drawn at round-2 send time, so
/// the independence required by Lemma 5 — the assigned value `b_i` is
/// fixed in round 1, before any flip exists — is preserved, and a rushing
/// adversary still sees flips before acting). The literal mode instead
/// sends `Flip` in a third subround.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaMsg {
    /// A phase message `(i, subround, val, decided, [flip])`.
    Phase {
        /// Phase number `i` (1-based).
        phase: u64,
        /// Which communication round of the phase.
        sub: SubRound,
        /// The sender's current value.
        val: bool,
        /// The sender's `decided` flag.
        decided: bool,
        /// Piggybacked coin contribution (±1); only meaningful from
        /// committee-`i` members in subround 2.
        flip: Option<i8>,
    },
    /// A standalone coin contribution (literal coin-round mode only).
    Flip {
        /// Phase number (1-based).
        phase: u64,
        /// The ±1 contribution.
        value: i8,
    },
}

impl BaMsg {
    /// The phase this message claims to belong to.
    pub fn phase(&self) -> u64 {
        match self {
            BaMsg::Phase { phase, .. } | BaMsg::Flip { phase, .. } => *phase,
        }
    }

    /// The ±1 contribution carried by this message, clamped by sign
    /// (Byzantine garbage like `0` or `42` becomes `+1`, `-7` becomes
    /// `-1`), or `None` if it carries no flip.
    pub fn clamped_flip(&self) -> Option<i64> {
        let raw = match self {
            BaMsg::Phase { flip, .. } => (*flip)?,
            BaMsg::Flip { value, .. } => *value,
        };
        Some(if raw >= 0 { 1 } else { -1 })
    }
}

impl Message for BaMsg {
    fn bit_size(&self) -> usize {
        match self {
            BaMsg::Phase { phase, flip, .. } => {
                // type tag (2) + phase counter + subround (2) + val (1) +
                // decided (1) + flip presence (1) and sign (1 when present).
                2 + bits_for(*phase) + 2 + 1 + 1 + 1 + usize::from(flip.is_some())
            }
            BaMsg::Flip { phase, .. } => 2 + bits_for(*phase) + 1,
        }
    }
}

/// Message of the Phase-King baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PkMsg {
    /// Round-1 value broadcast.
    Val {
        /// Phase (1-based).
        phase: u64,
        /// The sender's value.
        v: bool,
    },
    /// Round-2 proposal (sent only when the sender saw `n − t` identical
    /// values in round 1).
    Propose {
        /// Phase (1-based).
        phase: u64,
        /// The proposed value.
        v: bool,
    },
    /// Round-3 king broadcast.
    King {
        /// Phase (1-based).
        phase: u64,
        /// The king's value.
        v: bool,
    },
}

impl PkMsg {
    /// The phase this message claims to belong to.
    pub fn phase(&self) -> u64 {
        match self {
            PkMsg::Val { phase, .. } | PkMsg::Propose { phase, .. } | PkMsg::King { phase, .. } => {
                *phase
            }
        }
    }
}

impl Message for PkMsg {
    fn bit_size(&self) -> usize {
        let phase = self.phase();
        // type tag (2) + phase counter + value (1).
        2 + bits_for(phase) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subround_roundtrip() {
        for i in 1..=3 {
            assert_eq!(SubRound::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subround_rejects_zero() {
        let _ = SubRound::from_index(0);
    }

    #[test]
    fn bits_for_counters() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn phase_msg_is_logarithmic_in_phase() {
        let small = BaMsg::Phase {
            phase: 1,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        let large = BaMsg::Phase {
            phase: 1 << 20,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        assert!(small.bit_size() < large.bit_size());
        assert!(large.bit_size() <= 2 + 21 + 2 + 1 + 1 + 1);
    }

    #[test]
    fn flip_presence_costs_one_bit() {
        let without = BaMsg::Phase {
            phase: 3,
            sub: SubRound::Two,
            val: false,
            decided: false,
            flip: None,
        };
        let with = BaMsg::Phase {
            phase: 3,
            sub: SubRound::Two,
            val: false,
            decided: false,
            flip: Some(1),
        };
        assert_eq!(with.bit_size(), without.bit_size() + 1);
    }

    #[test]
    fn clamping_rules() {
        let m = BaMsg::Phase {
            phase: 1,
            sub: SubRound::Two,
            val: true,
            decided: true,
            flip: Some(-9),
        };
        assert_eq!(m.clamped_flip(), Some(-1));
        let m = BaMsg::Flip { phase: 2, value: 0 };
        assert_eq!(m.clamped_flip(), Some(1));
        let m = BaMsg::Phase {
            phase: 1,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        assert_eq!(m.clamped_flip(), None);
        assert_eq!(m.phase(), 1);
    }

    #[test]
    fn pk_msg_sizes_and_phase() {
        let v = PkMsg::Val { phase: 5, v: true };
        let p = PkMsg::Propose { phase: 5, v: true };
        let k = PkMsg::King { phase: 5, v: false };
        assert_eq!(v.phase(), 5);
        assert_eq!(p.phase(), 5);
        assert_eq!(k.phase(), 5);
        assert_eq!(v.bit_size(), 2 + 3 + 1);
    }
}
