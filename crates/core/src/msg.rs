//! Wire formats of the agreement protocols, with CONGEST-honest bit
//! sizes.
//!
//! [`BaMsg`] additionally implements [`PackedMessage`] — a fixed 32-bit
//! binary layout — so committee-BA runs can opt into the bit-packed
//! message plane (`aba_sim::PackedMailbox`) and tally thresholds with
//! word-parallel popcounts instead of per-message iteration.

use aba_sim::{Message, PackedMessage};

/// Which communication round of a phase a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubRound {
    /// First broadcast/receive round of the phase (Algorithm 3 lines
    /// 8–16).
    One,
    /// Second broadcast/receive round (lines 19–31).
    Two,
    /// The separate coin-flip round used only in the literal (non
    /// piggybacked) reading of the paper.
    Three,
}

impl SubRound {
    /// Subround from a 1-based index.
    pub fn from_index(i: u64) -> SubRound {
        match i {
            1 => SubRound::One,
            2 => SubRound::Two,
            3 => SubRound::Three,
            _ => panic!("subround index {i} out of range"),
        }
    }

    /// 1-based index.
    pub fn index(self) -> u64 {
        match self {
            SubRound::One => 1,
            SubRound::Two => 2,
            SubRound::Three => 3,
        }
    }
}

/// Bits needed to encode a value in `0..=v` (at least 1).
fn bits_for(v: u64) -> usize {
    (64 - v.max(1).leading_zeros()) as usize
}

/// Message of the committee-based agreement protocol (Algorithm 3).
///
/// The paper's messages are `(i, round, val, decided)` tuples; in the
/// default *piggyback* mode, committee members attach their ±1 coin
/// contribution to the round-2 message (drawn at round-2 send time, so
/// the independence required by Lemma 5 — the assigned value `b_i` is
/// fixed in round 1, before any flip exists — is preserved, and a rushing
/// adversary still sees flips before acting). The literal mode instead
/// sends `Flip` in a third subround.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaMsg {
    /// A phase message `(i, subround, val, decided, [flip])`.
    Phase {
        /// Phase number `i` (1-based).
        phase: u64,
        /// Which communication round of the phase.
        sub: SubRound,
        /// The sender's current value.
        val: bool,
        /// The sender's `decided` flag.
        decided: bool,
        /// Piggybacked coin contribution (±1); only meaningful from
        /// committee-`i` members in subround 2.
        flip: Option<i8>,
    },
    /// A standalone coin contribution (literal coin-round mode only).
    Flip {
        /// Phase number (1-based).
        phase: u64,
        /// The ±1 contribution.
        value: i8,
    },
}

impl BaMsg {
    /// The phase this message claims to belong to.
    pub fn phase(&self) -> u64 {
        match self {
            BaMsg::Phase { phase, .. } | BaMsg::Flip { phase, .. } => *phase,
        }
    }

    /// The ±1 contribution carried by this message, clamped by sign
    /// (Byzantine garbage like `0` or `42` becomes `+1`, `-7` becomes
    /// `-1`), or `None` if it carries no flip.
    pub fn clamped_flip(&self) -> Option<i64> {
        let raw = match self {
            BaMsg::Phase { flip, .. } => (*flip)?,
            BaMsg::Flip { value, .. } => *value,
        };
        Some(if raw >= 0 { 1 } else { -1 })
    }
}

impl Message for BaMsg {
    fn bit_size(&self) -> usize {
        match self {
            BaMsg::Phase { phase, flip, .. } => {
                // type tag (2) + phase counter + subround (2) + val (1) +
                // decided (1) + flip presence (1) and sign (1 when present).
                2 + bits_for(*phase) + 2 + 1 + 1 + 1 + usize::from(flip.is_some())
            }
            BaMsg::Flip { phase, .. } => 2 + bits_for(*phase) + 1,
        }
    }
}

/// 32-bit packed layout of [`BaMsg`] (low bit first):
///
/// ```text
/// bit  0      tag: 0 = Phase, 1 = Flip
/// bits 1-2    subround index 1..=3      (Phase only; 0 for Flip)
/// bit  3      val                       (Phase only)
/// bit  4      decided                   (Phase only)
/// bit  5      flip present              (Phase only)
/// bits 6-13   flip / value as `i8 as u8` (0 when absent)
/// bits 14-31  phase, 18 bits (packing fails at phase >= 2^18)
/// ```
///
/// The field order is chosen so that every threshold tally of the
/// protocol is a single `(mask, bits)` equality query: phase, subround,
/// `val`, `decided`, flip presence and flip *sign* (bit 13, the i8 sign
/// bit) are each independently maskable.
pub mod ba_code {
    use super::SubRound;

    /// Mask of the type-tag bit.
    pub const TAG: u32 = 1;
    /// Mask of the subround bits.
    pub const SUB: u32 = 0b110;
    /// Mask of the `val` bit.
    pub const VAL: u32 = 1 << 3;
    /// Mask of the `decided` bit.
    pub const DECIDED: u32 = 1 << 4;
    /// Mask of the flip-presence bit.
    pub const FLIP_PRESENT: u32 = 1 << 5;
    /// Shift of the 8-bit flip payload.
    pub const FLIP_SHIFT: u32 = 6;
    /// Mask of the flip sign bit (the i8 sign bit; clear means the
    /// clamped contribution is `+1`).
    pub const FLIP_SIGN: u32 = 1 << 13;
    /// Shift of the phase counter.
    pub const PHASE_SHIFT: u32 = 14;
    /// Number of phase bits; phases `>= 2^18` do not pack.
    pub const PHASE_BITS: u32 = 18;
    /// Mask of the phase bits.
    pub const PHASE: u32 = ((1 << PHASE_BITS) - 1) << PHASE_SHIFT;

    /// The packed phase field, or `None` if the counter does not fit.
    pub fn phase_field(phase: u64) -> Option<u32> {
        (phase < 1 << PHASE_BITS).then_some((phase as u32) << PHASE_SHIFT)
    }

    /// `(mask, bits)` matching `Phase { phase, sub, val, .. }` with any
    /// `decided`/flip — the round-1 value tally.
    pub fn phase_val_query(phase: u64, sub: SubRound, val: bool) -> Option<(u32, u32)> {
        let bits = phase_field(phase)? | ((sub.index() as u32) << 1) | ((val as u32) << 3);
        Some((TAG | SUB | VAL | PHASE, bits))
    }

    /// `(mask, bits)` matching `Phase { phase, sub, val, decided: true, .. }`
    /// — the round-2 decided-value tally.
    pub fn decided_val_query(phase: u64, sub: SubRound, val: bool) -> Option<(u32, u32)> {
        let (mask, bits) = phase_val_query(phase, sub, val)?;
        Some((mask | DECIDED, bits | DECIDED))
    }

    /// `(mask, bits)` matching `Phase { phase, sub, flip: Some(f), .. }`
    /// whose clamped flip is `+1` (`positive`) or `-1` — the piggybacked
    /// committee-coin tally.
    pub fn piggyback_flip_query(phase: u64, sub: SubRound, positive: bool) -> Option<(u32, u32)> {
        let mut bits = phase_field(phase)? | ((sub.index() as u32) << 1) | FLIP_PRESENT;
        if !positive {
            bits |= FLIP_SIGN;
        }
        Some((TAG | SUB | FLIP_PRESENT | FLIP_SIGN | PHASE, bits))
    }

    /// `(mask, bits)` matching `Flip { phase, value }` whose clamped
    /// contribution is `+1` (`positive`) or `-1` — the literal
    /// coin-round tally.
    pub fn standalone_flip_query(phase: u64, positive: bool) -> Option<(u32, u32)> {
        let mut bits = phase_field(phase)? | TAG;
        if !positive {
            bits |= FLIP_SIGN;
        }
        Some((TAG | FLIP_SIGN | PHASE, bits))
    }
}

impl PackedMessage for BaMsg {
    fn pack(&self) -> Option<u32> {
        match *self {
            BaMsg::Phase {
                phase,
                sub,
                val,
                decided,
                flip,
            } => {
                let mut c = ba_code::phase_field(phase)?;
                c |= (sub.index() as u32) << 1;
                c |= (val as u32) << 3;
                c |= (decided as u32) << 4;
                if let Some(f) = flip {
                    c |= ba_code::FLIP_PRESENT | ((f as u8 as u32) << ba_code::FLIP_SHIFT);
                }
                Some(c)
            }
            BaMsg::Flip { phase, value } => Some(
                ba_code::phase_field(phase)?
                    | ba_code::TAG
                    | ((value as u8 as u32) << ba_code::FLIP_SHIFT),
            ),
        }
    }

    fn unpack(code: u32) -> Self {
        let phase = (code >> ba_code::PHASE_SHIFT) as u64;
        let raw = ((code >> ba_code::FLIP_SHIFT) & 0xFF) as u8 as i8;
        if code & ba_code::TAG != 0 {
            BaMsg::Flip { phase, value: raw }
        } else {
            BaMsg::Phase {
                phase,
                sub: SubRound::from_index(((code >> 1) & 0b11) as u64),
                val: code & ba_code::VAL != 0,
                decided: code & ba_code::DECIDED != 0,
                flip: (code & ba_code::FLIP_PRESENT != 0).then_some(raw),
            }
        }
    }
}

/// Message of the Phase-King baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PkMsg {
    /// Round-1 value broadcast.
    Val {
        /// Phase (1-based).
        phase: u64,
        /// The sender's value.
        v: bool,
    },
    /// Round-2 proposal (sent only when the sender saw `n − t` identical
    /// values in round 1).
    Propose {
        /// Phase (1-based).
        phase: u64,
        /// The proposed value.
        v: bool,
    },
    /// Round-3 king broadcast.
    King {
        /// Phase (1-based).
        phase: u64,
        /// The king's value.
        v: bool,
    },
}

impl PkMsg {
    /// The phase this message claims to belong to.
    pub fn phase(&self) -> u64 {
        match self {
            PkMsg::Val { phase, .. } | PkMsg::Propose { phase, .. } | PkMsg::King { phase, .. } => {
                *phase
            }
        }
    }
}

impl Message for PkMsg {
    fn bit_size(&self) -> usize {
        let phase = self.phase();
        // type tag (2) + phase counter + value (1).
        2 + bits_for(phase) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subround_roundtrip() {
        for i in 1..=3 {
            assert_eq!(SubRound::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subround_rejects_zero() {
        let _ = SubRound::from_index(0);
    }

    #[test]
    fn bits_for_counters() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn phase_msg_is_logarithmic_in_phase() {
        let small = BaMsg::Phase {
            phase: 1,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        let large = BaMsg::Phase {
            phase: 1 << 20,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        assert!(small.bit_size() < large.bit_size());
        assert!(large.bit_size() <= 2 + 21 + 2 + 1 + 1 + 1);
    }

    #[test]
    fn flip_presence_costs_one_bit() {
        let without = BaMsg::Phase {
            phase: 3,
            sub: SubRound::Two,
            val: false,
            decided: false,
            flip: None,
        };
        let with = BaMsg::Phase {
            phase: 3,
            sub: SubRound::Two,
            val: false,
            decided: false,
            flip: Some(1),
        };
        assert_eq!(with.bit_size(), without.bit_size() + 1);
    }

    #[test]
    fn clamping_rules() {
        let m = BaMsg::Phase {
            phase: 1,
            sub: SubRound::Two,
            val: true,
            decided: true,
            flip: Some(-9),
        };
        assert_eq!(m.clamped_flip(), Some(-1));
        let m = BaMsg::Flip { phase: 2, value: 0 };
        assert_eq!(m.clamped_flip(), Some(1));
        let m = BaMsg::Phase {
            phase: 1,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        assert_eq!(m.clamped_flip(), None);
        assert_eq!(m.phase(), 1);
    }

    #[test]
    fn packed_codec_roundtrips_exhaustively() {
        let mut msgs = Vec::new();
        for phase in [1, 2, 3, 500, (1 << 18) - 1] {
            for value in [-128i8, -1, 0, 1, 127] {
                msgs.push(BaMsg::Flip { phase, value });
            }
            for sub in [SubRound::One, SubRound::Two, SubRound::Three] {
                for val in [false, true] {
                    for decided in [false, true] {
                        for flip in [None, Some(-128i8), Some(-1), Some(0), Some(1), Some(127)] {
                            msgs.push(BaMsg::Phase {
                                phase,
                                sub,
                                val,
                                decided,
                                flip,
                            });
                        }
                    }
                }
            }
        }
        for m in msgs {
            let code = m.pack().expect("fits");
            assert_eq!(BaMsg::unpack(code), m, "roundtrip of {m:?}");
        }
    }

    #[test]
    fn packing_fails_only_on_oversized_phase() {
        let big = BaMsg::Flip {
            phase: 1 << 18,
            value: 1,
        };
        assert_eq!(big.pack(), None);
        let big = BaMsg::Phase {
            phase: 1 << 18,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        assert_eq!(big.pack(), None);
    }

    #[test]
    fn query_builders_match_pack_output() {
        let matches = |m: &BaMsg, q: (u32, u32)| m.pack().expect("fits") & q.0 == q.1;
        let msg = BaMsg::Phase {
            phase: 7,
            sub: SubRound::One,
            val: true,
            decided: false,
            flip: None,
        };
        assert!(matches(
            &msg,
            ba_code::phase_val_query(7, SubRound::One, true).unwrap()
        ));
        assert!(!matches(
            &msg,
            ba_code::phase_val_query(7, SubRound::One, false).unwrap()
        ));
        assert!(!matches(
            &msg,
            ba_code::phase_val_query(8, SubRound::One, true).unwrap()
        ));
        // decided_val_query requires the decided bit regardless of val.
        assert!(!matches(
            &msg,
            ba_code::decided_val_query(7, SubRound::One, true).unwrap()
        ));
        let dec = BaMsg::Phase {
            phase: 7,
            sub: SubRound::Two,
            val: false,
            decided: true,
            flip: Some(-3),
        };
        assert!(matches(
            &dec,
            ba_code::decided_val_query(7, SubRound::Two, false).unwrap()
        ));
        // Flip sign splits on the clamped contribution: raw >= 0 is +1.
        assert!(matches(
            &dec,
            ba_code::piggyback_flip_query(7, SubRound::Two, false).unwrap()
        ));
        assert!(!matches(
            &dec,
            ba_code::piggyback_flip_query(7, SubRound::Two, true).unwrap()
        ));
        let zero_flip = BaMsg::Phase {
            phase: 7,
            sub: SubRound::Two,
            val: false,
            decided: true,
            flip: Some(0),
        };
        assert!(matches(
            &zero_flip,
            ba_code::piggyback_flip_query(7, SubRound::Two, true).unwrap()
        ));
        let f = BaMsg::Flip { phase: 9, value: 1 };
        assert!(matches(
            &f,
            ba_code::standalone_flip_query(9, true).unwrap()
        ));
        assert!(!matches(
            &f,
            ba_code::standalone_flip_query(9, false).unwrap()
        ));
        // Phase messages never match the standalone-flip query.
        assert!(!matches(
            &dec,
            ba_code::standalone_flip_query(7, false).unwrap()
        ));
        // Oversized phases refuse to build a query at all.
        assert_eq!(ba_code::phase_val_query(1 << 18, SubRound::One, true), None);
    }

    #[test]
    fn pk_msg_sizes_and_phase() {
        let v = PkMsg::Val { phase: 5, v: true };
        let p = PkMsg::Propose { phase: 5, v: true };
        let k = PkMsg::King { phase: 5, v: false };
        assert_eq!(v.phase(), 5);
        assert_eq!(p.phase(), 5);
        assert_eq!(k.phase(), 5);
        assert_eq!(v.bit_size(), 2 + 3 + 1);
    }
}
