//! King–Saia-style sampled-committee agreement (related work).
//!
//! King & Saia, *Breaking the O(n²) Bit Barrier: Scalable Byzantine
//! Agreement with an Adaptive Adversary* (PODC 2010 / JACM 2011), reach
//! agreement with `Õ(√n)` bits per processor by electing a small
//! committee and letting everyone else communicate with a polylog-sized
//! sample of it. This module implements a synchronous full-information
//! rendition of that communication pattern as an
//! [`aba_sim::Protocol`] — the *structure* the paper contrasts against,
//! not a line-by-line reproduction of the original's spectral
//! machinery:
//!
//! * a **public committee** of `Θ(log² n)` nodes, sampled on the pinned
//!   [`streams::COMMITTEE_SAMPLE`](aba_sim::rng::streams) RNG stream —
//!   a pure function of the master seed, so every node (and the
//!   full-information adversary) derives the same committee without
//!   perturbing any node, adversary, or network stream;
//! * each iteration spans **three engine rounds**: (1) every node sends
//!   its value to `Θ(log n)` sampled committee members, (2) members
//!   exchange committee votes among themselves while non-members send
//!   queries to sampled members, (3) members reply and everyone adopts
//!   the committee's majority.
//!
//! Per iteration the wire carries `O(n log n + log⁴ n)` messages —
//! sub-quadratic by construction, which is what lets the e05 campaign
//! run this protocol at n = 65,536 on the sparse message plane. Like
//! [`SamplingMajorityNode`](crate::sampling_majority::SamplingMajorityNode)
//! it provides almost-everywhere → everywhere convergence only for
//! adversaries below the sampling threshold; experiments measure it as
//! a baseline, not as a Definition-1 everywhere-agreement protocol.

use aba_sim::rng::{rng_for, streams};
use aba_sim::{Emission, Inbox, Message, NodeId, Protocol, Round};
use rand::{Rng, RngCore};
use std::sync::Arc;

/// Wire format of the sampled-committee protocol. Every variant is
/// iteration-tagged so stale traffic from earlier iterations is
/// ignored, exactly as in the sampling-majority baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KsMsg {
    /// A node's current value, pushed to sampled committee members.
    Vote {
        /// Iteration number (1-based).
        iter: u64,
        /// The sender's current value.
        val: bool,
    },
    /// A committee member's proposal, exchanged within the committee.
    CommitteeVote {
        /// Iteration number (1-based).
        iter: u64,
        /// Majority of the votes the member collected.
        val: bool,
    },
    /// "Send me the committee's value" (non-member → sampled member).
    Query {
        /// Iteration number (1-based).
        iter: u64,
    },
    /// A member's answer to a query.
    Reply {
        /// Iteration number (1-based).
        iter: u64,
        /// The committee's agreed value.
        val: bool,
    },
}

impl Message for KsMsg {
    fn bit_size(&self) -> usize {
        let iter = match self {
            KsMsg::Vote { iter, .. }
            | KsMsg::CommitteeVote { iter, .. }
            | KsMsg::Query { iter }
            | KsMsg::Reply { iter, .. } => *iter,
        };
        // tag (2) + iteration counter + value (1 unless a query).
        2 + (64 - iter.max(1).leading_zeros()) as usize
            + usize::from(!matches!(self, KsMsg::Query { .. }))
    }
}

/// One node of the King–Saia-style sampled-committee protocol. See the
/// module docs for the round structure.
#[derive(Debug, Clone)]
pub struct KingSaiaNode {
    id: NodeId,
    n: usize,
    iterations: u64,
    val: bool,
    /// The public committee, sorted ascending; shared (not cloned) per
    /// node — at n = 65,536 a per-node copy of a `Θ(log² n)` committee
    /// would itself be a latent O(n log² n) allocation.
    committee: Arc<Vec<NodeId>>,
    is_member: bool,
    /// How many committee members each node samples per push/query.
    samples: usize,
    /// Member state: vote tally collected in sub-round 1.
    vote_ones: usize,
    vote_total: usize,
    /// Member state: proposal derived from the vote tally.
    proposal: bool,
    /// Member state: the committee's agreed value for this iteration.
    committee_val: bool,
    /// Member state: who queried us in sub-round 2.
    queriers: Vec<NodeId>,
    /// Non-member state: the members we queried in sub-round 2.
    targets: Vec<NodeId>,
    out: Option<bool>,
    halted: bool,
}

impl KingSaiaNode {
    /// Network size this node was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether this node sits on the public committee.
    pub fn is_committee_member(&self) -> bool {
        self.is_member
    }

    /// The committee size used for an `n`-node network: `⌈2·log₂²n⌉`,
    /// clamped to `[1, n]`.
    pub fn committee_size(n: usize) -> usize {
        let l = (n.max(2) as f64).log2();
        ((2.0 * l * l).ceil() as usize).clamp(1, n)
    }

    /// How many committee members each node samples when pushing votes
    /// and querying: `⌈log₂ n⌉ + 1`, clamped to the committee size.
    pub fn sample_size(n: usize) -> usize {
        let l = (n.max(2) as f64).log2().ceil() as usize;
        (l + 1).clamp(1, Self::committee_size(n))
    }

    /// The iteration count the sampling analyses suggest: `Θ(log n)` —
    /// the committee relay converges a factor `log n` faster than the
    /// pairwise sampling dynamic.
    pub fn recommended_iterations(n: usize) -> u64 {
        let l = (n.max(2) as f64).log2();
        (2.0 * l).ceil() as u64
    }

    /// Samples the public committee for `(n, seed)` on the pinned
    /// [`streams::COMMITTEE_SAMPLE`] stream: `committee_size(n)`
    /// distinct members, sorted ascending. Every node of a run derives
    /// this same committee; so can adversaries and experiments (the
    /// full-information model — the committee is common knowledge).
    pub fn sample_committee(n: usize, seed: u64) -> Vec<NodeId> {
        let k = Self::committee_size(n);
        let mut rng = rng_for(seed, streams::COMMITTEE_SAMPLE);
        let mut members = std::collections::BTreeSet::new();
        while members.len() < k {
            members.insert(rng.gen_range(0..n as u32));
        }
        members.into_iter().map(NodeId::new).collect()
    }

    /// Builds the whole network from an input assignment, sampling the
    /// committee from `seed` (pass the run's master seed; the committee
    /// stream never collides with node or adversary streams).
    pub fn network(n: usize, iterations: u64, inputs: &[bool], seed: u64) -> Vec<KingSaiaNode> {
        assert_eq!(inputs.len(), n, "one input per node");
        assert!(n >= 1 && iterations >= 1);
        let committee = Arc::new(Self::sample_committee(n, seed));
        let samples = Self::sample_size(n);
        inputs
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let id = NodeId::new(i as u32);
                KingSaiaNode {
                    id,
                    n,
                    iterations,
                    val: *b,
                    is_member: committee.binary_search(&id).is_ok(),
                    committee: Arc::clone(&committee),
                    samples,
                    vote_ones: 0,
                    vote_total: 0,
                    proposal: *b,
                    committee_val: *b,
                    queriers: Vec::new(),
                    targets: Vec::new(),
                    out: None,
                    halted: false,
                }
            })
            .collect()
    }

    /// Current value (exposed for adversaries and experiments — the
    /// full-information model).
    pub fn val(&self) -> bool {
        self.val
    }

    /// The node ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this node sits on the public committee.
    pub fn is_member(&self) -> bool {
        self.is_member
    }

    /// The public committee, sorted ascending.
    pub fn committee(&self) -> &[NodeId] {
        &self.committee
    }

    /// Whether `who` sits on the public committee (senders of committee
    /// votes are validated against this — a Byzantine non-member cannot
    /// forge its way into the committee exchange).
    fn member(&self, who: NodeId) -> bool {
        self.committee.binary_search(&who).is_ok()
    }

    /// `(iteration, sub-round)` of an engine round; three engine rounds
    /// per iteration.
    fn schedule(round: Round) -> (u64, u64) {
        (round.index() / 3 + 1, round.index() % 3 + 1)
    }

    /// Samples `self.samples` committee members (with replacement,
    /// deduplicated) into `out`, sorted ascending.
    fn sample_members(&self, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        out.clear();
        for _ in 0..self.samples {
            out.push(self.committee[rng.gen_range(0..self.committee.len())]);
        }
        out.sort_unstable();
        out.dedup();
    }
}

impl Protocol for KingSaiaNode {
    type Msg = KsMsg;

    fn emit(&mut self, round: Round, rng: &mut dyn RngCore) -> Emission<KsMsg> {
        let (iter, sub) = Self::schedule(round);
        match sub {
            1 => {
                // Push the current value to a committee sample.
                let mut picks = Vec::new();
                self.sample_members(rng, &mut picks);
                let vote = KsMsg::Vote {
                    iter,
                    val: self.val,
                };
                self.vote_ones = 0;
                self.vote_total = 0;
                self.queriers.clear();
                Emission::PerRecipient(picks.into_iter().map(|m| (m, vote)).collect())
            }
            2 => {
                if self.is_member {
                    // Exchange proposals within the committee (own vote
                    // is counted locally, not wired to ourselves).
                    let cv = KsMsg::CommitteeVote {
                        iter,
                        val: self.proposal,
                    };
                    Emission::PerRecipient(
                        self.committee
                            .iter()
                            .filter(|m| **m != self.id)
                            .map(|m| (*m, cv))
                            .collect(),
                    )
                } else {
                    // Ask a fresh committee sample for the outcome.
                    let mut picks = Vec::new();
                    self.sample_members(rng, &mut picks);
                    self.targets = picks.clone();
                    let q = KsMsg::Query { iter };
                    Emission::PerRecipient(picks.into_iter().map(|m| (m, q)).collect())
                }
            }
            3 => {
                if self.is_member {
                    let reply = KsMsg::Reply {
                        iter,
                        val: self.committee_val,
                    };
                    Emission::PerRecipient(self.queriers.iter().map(|q| (*q, reply)).collect())
                } else {
                    Emission::Silent
                }
            }
            _ => unreachable!(),
        }
    }

    fn receive(&mut self, round: Round, inbox: Inbox<'_, KsMsg>, _rng: &mut dyn RngCore) {
        let (iter, sub) = Self::schedule(round);
        match sub {
            1 => {
                if self.is_member {
                    for (_, m) in inbox.iter() {
                        if let KsMsg::Vote { iter: i, val } = m {
                            if *i == iter {
                                self.vote_total += 1;
                                self.vote_ones += usize::from(*val);
                            }
                        }
                    }
                    // Majority of collected votes; no votes (or a tie)
                    // keeps the member's own value.
                    self.proposal = if 2 * self.vote_ones > self.vote_total {
                        true
                    } else if 2 * self.vote_ones < self.vote_total {
                        false
                    } else {
                        self.val
                    };
                }
            }
            2 => {
                if self.is_member {
                    // Committee majority over validated member votes
                    // plus our own proposal; ties keep the proposal.
                    let mut ones = usize::from(self.proposal);
                    let mut total = 1usize;
                    for (s, m) in inbox.iter() {
                        match m {
                            KsMsg::CommitteeVote { iter: i, val }
                                if *i == iter && self.member(s) =>
                            {
                                total += 1;
                                ones += usize::from(*val);
                            }
                            KsMsg::Query { iter: i } if *i == iter => self.queriers.push(s),
                            _ => {}
                        }
                    }
                    self.committee_val = if 2 * ones > total {
                        true
                    } else if 2 * ones < total {
                        false
                    } else {
                        self.proposal
                    };
                }
            }
            3 => {
                if self.is_member {
                    self.val = self.committee_val;
                } else {
                    // Majority of the replies from the members we
                    // actually queried; silence or a tie keeps the
                    // current value.
                    let mut ones = 0usize;
                    let mut total = 0usize;
                    for target in &self.targets {
                        if let Some(KsMsg::Reply { iter: i, val }) = inbox.from(*target) {
                            if *i == iter {
                                total += 1;
                                ones += usize::from(*val);
                            }
                        }
                    }
                    if 2 * ones > total {
                        self.val = true;
                    } else if 2 * ones < total {
                        self.val = false;
                    }
                }
                if iter >= self.iterations {
                    self.out = Some(self.val);
                    self.halted = true;
                }
            }
            _ => unreachable!(),
        }
    }

    fn output(&self) -> Option<bool> {
        self.out
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::adversary::Benign;
    use aba_sim::{SimConfig, Simulation, SparseSimulation};

    #[test]
    fn committee_is_deterministic_sorted_and_sized() {
        let a = KingSaiaNode::sample_committee(256, 7);
        let b = KingSaiaNode::sample_committee(256, 7);
        assert_eq!(a, b, "committee is a pure function of (n, seed)");
        assert_ne!(a, KingSaiaNode::sample_committee(256, 8));
        assert_eq!(a.len(), KingSaiaNode::committee_size(256));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(a.iter().all(|m| m.index() < 256));
    }

    #[test]
    fn committee_size_is_polylog() {
        assert_eq!(KingSaiaNode::committee_size(1), 1);
        let small = KingSaiaNode::committee_size(64);
        let large = KingSaiaNode::committee_size(65_536);
        assert!(small < large);
        assert!(large < 1024, "polylog, not polynomial: {large}");
        assert!(KingSaiaNode::sample_size(65_536) <= large);
    }

    #[test]
    fn uniform_inputs_agree_and_halt() {
        let n = 48;
        let iters = 4;
        let nodes = KingSaiaNode::network(n, iters, &vec![true; n], 11);
        let report = Simulation::new(SimConfig::new(n, 0).with_seed(11), nodes, Benign).run();
        assert!(report.all_halted);
        assert!(report.outputs.iter().all(|o| *o == Some(true)));
        assert_eq!(report.rounds, 3 * iters);
    }

    #[test]
    fn split_inputs_converge_fault_free() {
        let n = 64;
        let iters = KingSaiaNode::recommended_iterations(n);
        let mut converged = 0;
        for seed in 0..10 {
            let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let nodes = KingSaiaNode::network(n, iters, &inputs, seed);
            let report = Simulation::new(SimConfig::new(n, 0).with_seed(seed), nodes, Benign).run();
            let ones = report.outputs.iter().filter(|o| **o == Some(true)).count();
            if ones == 0 || ones == n {
                converged += 1;
            }
        }
        assert!(converged >= 8, "converged in only {converged}/10 runs");
    }

    #[test]
    fn message_complexity_is_subquadratic() {
        let n = 256;
        let nodes = KingSaiaNode::network(n, 4, &vec![false; n], 3);
        let report = Simulation::new(SimConfig::new(n, 0).with_seed(3), nodes, Benign).run();
        let per_round = report.metrics.total_messages as f64 / report.rounds as f64;
        // Per iteration: ≤ n·s votes + k² committee votes + n·s queries
        // + n·s replies over three rounds — far below the n²/ broadcast
        // regime.
        let k = KingSaiaNode::committee_size(n) as f64;
        let s = KingSaiaNode::sample_size(n) as f64;
        let bound = (n as f64) * s + k * k;
        assert!(
            per_round <= bound,
            "expected ≤ {bound} messages/round, got {per_round}"
        );
        assert!(
            per_round < (n * n) as f64 / 8.0,
            "sub-quadratic: got {per_round}"
        );
    }

    #[test]
    fn runs_identically_on_the_sparse_plane() {
        use aba_sim::{NoOracle, NoProbe, PassThrough};
        let n = 32;
        let inputs: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let dense = Simulation::new(
            SimConfig::new(n, 0).with_seed(5),
            KingSaiaNode::network(n, 3, &inputs, 5),
            Benign,
        )
        .run();
        let sparse = SparseSimulation::with_instruments(
            SimConfig::new(n, 0).with_seed(5),
            KingSaiaNode::network(n, 3, &inputs, 5),
            Benign,
            PassThrough,
            NoOracle,
            NoProbe,
        )
        .run();
        assert_eq!(dense.outputs, sparse.outputs);
        assert_eq!(dense.rounds, sparse.rounds);
        assert_eq!(dense.metrics.total_messages, sparse.metrics.total_messages);
        assert_eq!(dense.metrics.max_edge_bits, sparse.metrics.max_edge_bits);
    }
}
