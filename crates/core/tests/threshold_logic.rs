//! Direct unit tests of Algorithm 3's per-round threshold logic, using
//! hand-crafted mailboxes instead of full simulations — each test is one
//! sentence of the paper made executable.

use aba_agreement::{BaConfig, BaMsg, BaNodeView, CommitteeBa, SubRound};
use aba_sim::{Emission, NodeId, Protocol, Round, RoundMailbox};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 10;
const T: usize = 3;

fn node(input: bool) -> CommitteeBa {
    let cfg = BaConfig::paper_las_vegas(N, T, 2.0).unwrap();
    CommitteeBa::new(cfg, NodeId::new(9), input)
}

fn phase_msg(phase: u64, sub: SubRound, val: bool, decided: bool) -> BaMsg {
    BaMsg::Phase {
        phase,
        sub,
        val,
        decided,
        flip: None,
    }
}

/// Feeds a node one receive step with the given per-sender messages.
fn deliver(node: &mut CommitteeBa, round: u64, msgs: &[(u32, BaMsg)]) {
    let mut mb: RoundMailbox<BaMsg> = RoundMailbox::new(N);
    for (sender, m) in msgs {
        mb.set(NodeId::new(*sender), Emission::Broadcast(*m));
    }
    let mut rng = SmallRng::seed_from_u64(7);
    node.receive(Round::new(round), mb.inbox(NodeId::new(9)), &mut rng);
}

/// Emits (to advance the node's internal phase tracking) and discards.
fn tick_emit(node: &mut CommitteeBa, round: u64) {
    let mut rng = SmallRng::seed_from_u64(7);
    let _ = node.emit(Round::new(round), &mut rng);
}

#[test]
fn round1_exactly_n_minus_t_identical_decides() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    // n − t = 7 senders say true.
    let msgs: Vec<(u32, BaMsg)> = (0..7)
        .map(|s| (s, phase_msg(1, SubRound::One, true, false)))
        .collect();
    deliver(&mut v, 0, &msgs);
    assert!(v.ba_decided(), "exactly n−t identical values must decide");
    assert!(v.ba_val());
}

#[test]
fn round1_n_minus_t_minus_one_does_not_decide() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    let msgs: Vec<(u32, BaMsg)> = (0..6)
        .map(|s| (s, phase_msg(1, SubRound::One, true, false)))
        .collect();
    deliver(&mut v, 0, &msgs);
    assert!(!v.ba_decided(), "n−t−1 must not clear the threshold");
}

#[test]
fn round1_mixed_values_below_threshold_clears_decided() {
    let mut v = node(true);
    tick_emit(&mut v, 0);
    // 5 true / 5 false — nobody reaches 7.
    let msgs: Vec<(u32, BaMsg)> = (0..10)
        .map(|s| (s, phase_msg(1, SubRound::One, s % 2 == 0, false)))
        .collect();
    deliver(&mut v, 0, &msgs);
    assert!(!v.ba_decided());
}

#[test]
fn round1_wrong_phase_messages_are_ignored() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    // 7 identical values but tagged phase 2 — framing violation.
    let msgs: Vec<(u32, BaMsg)> = (0..7)
        .map(|s| (s, phase_msg(2, SubRound::One, true, false)))
        .collect();
    deliver(&mut v, 0, &msgs);
    assert!(
        !v.ba_decided(),
        "messages from the wrong phase must be ignored"
    );
}

#[test]
fn round1_wrong_subround_messages_are_ignored() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    let msgs: Vec<(u32, BaMsg)> = (0..7)
        .map(|s| (s, phase_msg(1, SubRound::Two, true, true)))
        .collect();
    deliver(&mut v, 0, &msgs);
    assert!(
        !v.ba_decided(),
        "round-2 messages must not count in round 1"
    );
}

#[test]
fn round2_case1_n_minus_t_trues_sets_finish() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    deliver(&mut v, 0, &[]); // round 1: nothing
    tick_emit(&mut v, 1);
    let msgs: Vec<(u32, BaMsg)> = (0..7)
        .map(|s| (s, phase_msg(1, SubRound::Two, true, true)))
        .collect();
    deliver(&mut v, 1, &msgs);
    assert!(v.ba_finished(), "case 1: n−t Trues must set finish");
    assert!(v.ba_val() && v.ba_decided());
}

#[test]
fn round2_case2_t_plus_one_trues_adopts_without_finish() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    deliver(&mut v, 0, &[]);
    tick_emit(&mut v, 1);
    // Exactly t + 1 = 4 Trues.
    let msgs: Vec<(u32, BaMsg)> = (0..4)
        .map(|s| (s, phase_msg(1, SubRound::Two, true, true)))
        .collect();
    deliver(&mut v, 1, &msgs);
    assert!(v.ba_decided() && v.ba_val());
    assert!(!v.ba_finished(), "t+1 adopts but must not finish");
}

#[test]
fn round2_t_trues_falls_to_the_coin() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    deliver(&mut v, 0, &[]);
    tick_emit(&mut v, 1);
    // Only t = 3 Trues — below the t+1 threshold: case 3.
    let mut msgs: Vec<(u32, BaMsg)> = (0..3)
        .map(|s| (s, phase_msg(1, SubRound::Two, true, true)))
        .collect();
    // Committee flips: committee for phase 1 holds the low IDs; a lone
    // −1 flip drives the sum negative.
    msgs.push((
        0,
        BaMsg::Phase {
            phase: 1,
            sub: SubRound::Two,
            val: true,
            decided: true,
            flip: Some(-1),
        },
    ));
    deliver(&mut v, 1, &msgs);
    assert!(!v.ba_decided(), "coin resets decided (line 31)");
    assert!(!v.ba_val(), "sum = −1 < 0 ⇒ coin value 0");
    assert!(!v.ba_finished());
}

#[test]
fn round2_decided_false_messages_never_count_toward_thresholds() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    deliver(&mut v, 0, &[]);
    tick_emit(&mut v, 1);
    // All n senders say (true, decided=false): no threshold can fire.
    let msgs: Vec<(u32, BaMsg)> = (0..10)
        .map(|s| (s, phase_msg(1, SubRound::Two, true, false)))
        .collect();
    deliver(&mut v, 1, &msgs);
    assert!(!v.ba_decided());
    assert!(!v.ba_finished());
}

#[test]
fn round2_flips_from_non_committee_senders_are_ignored() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    deliver(&mut v, 0, &[]);
    tick_emit(&mut v, 1);
    let cfg = BaConfig::paper_las_vegas(N, T, 2.0).unwrap();
    let committee = cfg.committee_for_phase(1);
    // A non-member floods −1 flips; one member sends +1. Sum must be +1.
    let non_member = (0..N as u32)
        .find(|id| !cfg.plan.is_member(NodeId::new(*id), committee))
        .expect("some non-member exists");
    let member = (0..N as u32)
        .find(|id| cfg.plan.is_member(NodeId::new(*id), committee))
        .expect("some member exists");
    let msgs = vec![
        (
            non_member,
            BaMsg::Phase {
                phase: 1,
                sub: SubRound::Two,
                val: false,
                decided: false,
                flip: Some(-1),
            },
        ),
        (
            member,
            BaMsg::Phase {
                phase: 1,
                sub: SubRound::Two,
                val: false,
                decided: false,
                flip: Some(1),
            },
        ),
    ];
    deliver(&mut v, 1, &msgs);
    assert!(
        v.ba_val(),
        "only the member's +1 counts: sum = 1 ≥ 0 ⇒ coin 1"
    );
}

#[test]
fn garbage_flip_values_are_clamped_not_amplified() {
    let mut v = node(false);
    tick_emit(&mut v, 0);
    deliver(&mut v, 0, &[]);
    tick_emit(&mut v, 1);
    let cfg = BaConfig::paper_las_vegas(N, T, 2.0).unwrap();
    let committee = cfg.committee_for_phase(1);
    let members: Vec<u32> = (0..N as u32)
        .filter(|id| cfg.plan.is_member(NodeId::new(*id), committee))
        .collect();
    assert!(members.len() >= 2, "need two members for this test");
    // One member sends flip=127 (garbage): clamps to +1, so it cannot
    // outvote the other member's −1 plus... with two members: +1 −1 = 0 ≥ 0.
    let msgs = vec![
        (
            members[0],
            BaMsg::Phase {
                phase: 1,
                sub: SubRound::Two,
                val: false,
                decided: false,
                flip: Some(127),
            },
        ),
        (
            members[1],
            BaMsg::Phase {
                phase: 1,
                sub: SubRound::Two,
                val: false,
                decided: false,
                flip: Some(-1),
            },
        ),
    ];
    deliver(&mut v, 1, &msgs);
    assert!(v.ba_val(), "clamped +1 and −1 tie to 0 ⇒ coin 1");
}

#[test]
fn empty_inbox_round2_takes_coin_with_zero_sum() {
    let mut v = node(true);
    tick_emit(&mut v, 0);
    deliver(&mut v, 0, &[]);
    tick_emit(&mut v, 1);
    deliver(&mut v, 1, &[]);
    // Sum of zero committee flips is 0 ⇒ coin outputs 1 (sum ≥ 0 rule).
    assert!(v.ba_val());
    assert!(!v.ba_decided());
}

#[test]
fn emit_round2_committee_member_attaches_flip() {
    // Node 9 sits in the last committee; find a phase where it flips.
    let cfg = BaConfig::paper_las_vegas(N, T, 2.0).unwrap();
    let my_committee = cfg.plan.committee_of(NodeId::new(9));
    // Phase whose committee is ours (1-based).
    let phase = (1..=cfg.plan.count() as u64)
        .find(|p| cfg.committee_for_phase(*p) == my_committee)
        .unwrap();
    let round = (phase - 1) * cfg.rounds_per_phase() + 1; // subround 2
    let mut v = node(true);
    let mut rng = SmallRng::seed_from_u64(3);
    // Advance emit through earlier rounds so internal phase tracking is sane.
    for r in 0..round {
        let _ = v.emit(Round::new(r), &mut rng);
        // Feed empty inboxes to advance.
        let mb: RoundMailbox<BaMsg> = RoundMailbox::new(N);
        v.receive(Round::new(r), mb.inbox(NodeId::new(9)), &mut rng);
    }
    let emission = v.emit(Round::new(round), &mut rng);
    match emission {
        Emission::Broadcast(BaMsg::Phase { flip, sub, .. }) => {
            assert_eq!(sub, SubRound::Two);
            assert!(flip.is_some(), "committee member must flip in its phase");
            assert!(v.ba_flip().is_some());
        }
        other => panic!("expected a round-2 broadcast, got {other:?}"),
    }
}
