//! Property-style tests for protocol parameterization, deterministically
//! sampled: the committee-count formula, schedules, and config invariants
//! over pseudorandom (n, t, α) draws. (No proptest in this offline
//! workspace — cases come from a fixed-seed generator.)

use aba_agreement::{BaConfig, CoinRoundMode, TerminationMode};
use aba_sim::Round;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A valid (n, t) pair with n ≥ 3t + 1.
fn n_t(gen: &mut SmallRng) -> (usize, usize) {
    let t = gen.gen_range(0..60usize);
    let min_n = 3 * t + 1;
    (gen.gen_range(min_n..min_n + 50), t)
}

/// The committee count is always in [1, n] and the partition covers all
/// nodes with nonempty committees.
#[test]
fn committee_count_is_well_formed() {
    let mut gen = SmallRng::seed_from_u64(0xC0C0);
    for _ in 0..256 {
        let (n, t) = n_t(&mut gen);
        let alpha = gen.gen_range(0.5f64..16.0);
        let c = BaConfig::committee_count(n, t, alpha);
        assert!(c >= 1 && c <= n, "n={n} t={t} alpha={alpha}");
        let cfg = BaConfig::paper(n, t, alpha).unwrap();
        assert!(cfg.plan.count() >= 1);
        assert!(cfg.phases >= 1);
        let mut covered = 0usize;
        for k in 0..cfg.plan.count() {
            assert!(cfg.plan.size_of(k) >= 1, "n={n} t={t} alpha={alpha} k={k}");
            covered += cfg.plan.size_of(k);
        }
        assert_eq!(covered, n, "n={n} t={t} alpha={alpha}");
    }
}

/// More α never means fewer committees (the whp guarantee is monotone in
/// the schedule length).
#[test]
fn phases_monotone_in_alpha() {
    let mut gen = SmallRng::seed_from_u64(0xA1FA);
    for _ in 0..256 {
        let (n, t) = n_t(&mut gen);
        let alpha = gen.gen_range(0.5f64..8.0);
        let c1 = BaConfig::committee_count(n, t, alpha);
        let c2 = BaConfig::committee_count(n, t, alpha * 2.0);
        assert!(c2 >= c1, "n={n} t={t} alpha={alpha}: c({c1}) > c2({c2})");
    }
}

/// The round schedule is a bijection onto (phase, subround) pairs.
#[test]
fn schedule_roundtrip() {
    let mut gen = SmallRng::seed_from_u64(0x5C4E);
    for _ in 0..256 {
        let (n, t) = n_t(&mut gen);
        let round = gen.gen_range(0..10_000u64);
        let literal = gen.gen::<bool>();
        let mut cfg = BaConfig::paper(n, t, 2.0).unwrap();
        if literal {
            cfg = cfg.with_coin_round(CoinRoundMode::Literal);
        }
        let rpp = cfg.rounds_per_phase();
        let (phase, sub) = cfg.schedule(Round::new(round));
        let ctx = format!("n={n} t={t} round={round} literal={literal}");
        assert!(phase >= 1, "{ctx}");
        assert!((1..=rpp).contains(&sub), "{ctx}");
        assert_eq!((phase - 1) * rpp + (sub - 1), round, "{ctx}");
    }
}

/// The Las Vegas committee schedule wraps cleanly.
#[test]
fn committee_schedule_wraps() {
    let mut gen = SmallRng::seed_from_u64(0x3A95);
    for _ in 0..256 {
        let (n, t) = n_t(&mut gen);
        let phase = gen.gen_range(1..10_000u64);
        let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
        let k = cfg.committee_for_phase(phase);
        assert!(k < cfg.plan.count(), "n={n} t={t} phase={phase}");
        assert_eq!(
            k,
            cfg.committee_for_phase(phase + cfg.plan.count() as u64),
            "n={n} t={t} phase={phase}"
        );
    }
}

/// Dealer coins are deterministic per phase and non-constant across
/// phases.
#[test]
fn dealer_coin_properties() {
    let mut gen = SmallRng::seed_from_u64(0xDEA1);
    for _ in 0..128 {
        let (n, t) = n_t(&mut gen);
        let seed = gen.next_u64();
        let cfg = BaConfig::rabin_dealer(n, t, seed).unwrap();
        assert_eq!(cfg.mode, TerminationMode::LasVegas);
        let coins: Vec<bool> = (1..=64).map(|p| cfg.dealer_coin(p).unwrap()).collect();
        let again: Vec<bool> = (1..=64).map(|p| cfg.dealer_coin(p).unwrap()).collect();
        assert_eq!(coins, again, "n={n} t={t} seed={seed}");
        let ones = coins.iter().filter(|b| **b).count();
        assert!(
            (8..=56).contains(&ones),
            "n={n} t={t} seed={seed}: 64 dealer coins look biased: {ones} ones"
        );
    }
}

/// Resilience validation: n < 3t+1 is always rejected, n ≥ 3t+1 always
/// accepted.
#[test]
fn resilience_boundary_is_sharp() {
    for t in 1usize..80 {
        assert!(BaConfig::paper(3 * t, t, 2.0).is_err(), "t={t}");
        assert!(BaConfig::paper(3 * t + 1, t, 2.0).is_ok(), "t={t}");
        assert!(BaConfig::chor_coan(3 * t, t, 1.0).is_err(), "t={t}");
        assert!(BaConfig::rabin_dealer(3 * t, t, 0).is_err(), "t={t}");
    }
}
