//! Property tests for protocol parameterization: the committee-count
//! formula, schedules, and config invariants over arbitrary (n, t, α).

use aba_agreement::{BaConfig, CoinRoundMode, TerminationMode};
use aba_sim::Round;
use proptest::prelude::*;

/// Valid (n, t) pairs with n ≥ 3t + 1.
fn n_t() -> impl Strategy<Value = (usize, usize)> {
    (0usize..60).prop_flat_map(|t| (Just(3 * t + 1), Just(t)).prop_flat_map(|(min_n, t)| {
        (min_n..min_n + 50).prop_map(move |n| (n, t))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The committee count is always in [1, n] and the partition covers
    /// all nodes with nonempty committees.
    #[test]
    fn committee_count_is_well_formed((n, t) in n_t(), alpha in 0.5f64..16.0) {
        let c = BaConfig::committee_count(n, t, alpha);
        prop_assert!(c >= 1 && c <= n);
        let cfg = BaConfig::paper(n, t, alpha).unwrap();
        prop_assert!(cfg.plan.count() >= 1);
        prop_assert!(cfg.phases >= 1);
        let mut covered = 0usize;
        for k in 0..cfg.plan.count() {
            prop_assert!(cfg.plan.size_of(k) >= 1);
            covered += cfg.plan.size_of(k);
        }
        prop_assert_eq!(covered, n);
    }

    /// More α never means fewer phases (the whp guarantee is monotone in
    /// the schedule length).
    #[test]
    fn phases_monotone_in_alpha((n, t) in n_t(), alpha in 0.5f64..8.0) {
        let c1 = BaConfig::committee_count(n, t, alpha);
        let c2 = BaConfig::committee_count(n, t, alpha * 2.0);
        prop_assert!(c2 >= c1, "alpha {alpha}: c({}) > c2({})", c1, c2);
    }

    /// The round schedule is a bijection onto (phase, subround) pairs.
    #[test]
    fn schedule_roundtrip((n, t) in n_t(), round in 0u64..10_000, literal in any::<bool>()) {
        let mut cfg = BaConfig::paper(n, t, 2.0).unwrap();
        if literal {
            cfg = cfg.with_coin_round(CoinRoundMode::Literal);
        }
        let rpp = cfg.rounds_per_phase();
        let (phase, sub) = cfg.schedule(Round::new(round));
        prop_assert!(phase >= 1);
        prop_assert!((1..=rpp).contains(&sub));
        prop_assert_eq!((phase - 1) * rpp + (sub - 1), round);
    }

    /// The Las Vegas committee schedule wraps cleanly.
    #[test]
    fn committee_schedule_wraps((n, t) in n_t(), phase in 1u64..10_000) {
        let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
        let k = cfg.committee_for_phase(phase);
        prop_assert!(k < cfg.plan.count());
        prop_assert_eq!(k, cfg.committee_for_phase(phase + cfg.plan.count() as u64));
    }

    /// Dealer coins are deterministic per phase and non-constant across
    /// phases.
    #[test]
    fn dealer_coin_properties((n, t) in n_t(), seed in any::<u64>()) {
        let cfg = BaConfig::rabin_dealer(n, t, seed).unwrap();
        prop_assert_eq!(cfg.mode, TerminationMode::LasVegas);
        let coins: Vec<bool> = (1..=64).map(|p| cfg.dealer_coin(p).unwrap()).collect();
        let again: Vec<bool> = (1..=64).map(|p| cfg.dealer_coin(p).unwrap()).collect();
        prop_assert_eq!(&coins, &again);
        let ones = coins.iter().filter(|b| **b).count();
        prop_assert!((8..=56).contains(&ones), "64 dealer coins look biased: {ones} ones");
    }

    /// Resilience validation: n < 3t+1 is always rejected, n ≥ 3t+1
    /// always accepted.
    #[test]
    fn resilience_boundary_is_sharp(t in 1usize..80) {
        prop_assert!(BaConfig::paper(3 * t, t, 2.0).is_err());
        prop_assert!(BaConfig::paper(3 * t + 1, t, 2.0).is_ok());
        prop_assert!(BaConfig::chor_coan(3 * t, t, 1.0).is_err());
        prop_assert!(BaConfig::rabin_dealer(3 * t, t, 0).is_err());
    }
}
