//! Integration: the common-coin protocols (Theorem 3 / Corollary 1)
//! measured as black boxes, plus deterministically sampled committee
//! checks. (No proptest: configurations come from fixed-seed streams so
//! every CI run checks the identical sample.)

use adaptive_ba::attacks::{CoinKiller, NonRushingPolicy};
use adaptive_ba::coin::{analysis, CoinFlipNode, CommitteePlan};
use adaptive_ba::sim::adversary::Benign;
use adaptive_ba::sim::{SimConfig, Simulation};
use adaptive_ba::{AttackSpec, ProtocolSpec, ScenarioBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Theorem 3, measured: with budget √n/2 under the optimal rushing
/// attack, the coin is common with probability well above the analytic
/// 1/6 floor, and conditioned on commonality both values occur.
#[test]
fn theorem3_floor_holds_empirically() {
    let report = ScenarioBuilder::new(144, 6) // √n = 12, budget 6
        .protocol(ProtocolSpec::CommonCoin)
        .adversary(AttackSpec::CoinKiller)
        .trials(300)
        .run_batch();
    let p_comm = report.agreement_rate();
    assert!(
        p_comm >= 1.0 / 6.0,
        "Pr[Comm] = {p_comm} below the Theorem 3 floor"
    );
    // Definition 2(B): conditional bias bounded away from 0 and 1.
    let bias = report.decision_rate(true);
    assert!(
        (0.15..=0.85).contains(&bias),
        "conditional bias {bias} not bounded away from 0/1"
    );
}

/// The exact anti-concentration curve upper- and lower-bounds the
/// measured commonality within sampling error.
#[test]
fn measured_commonality_tracks_exact_theory() {
    let n = 64;
    let trials = 400;
    for t in [2usize, 4, 8] {
        let measured = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::CommonCoin)
            .adversary(AttackSpec::CoinKiller)
            .seed(50_000)
            .trials(trials)
            .run_batch()
            .agreement_rate();
        let theory = analysis::prob_coin_survives(n as u64, t as u64);
        assert!(
            (measured - theory).abs() < 0.08,
            "t={t}: measured {measured} vs theory {theory}"
        );
    }
}

fn honest_outputs(report: &adaptive_ba::sim::RunReport) -> Vec<bool> {
    report.honest_outputs()
}

/// Fault-free Algorithm 1/2 always yields a common coin, for sampled
/// network sizes, committee choices, and seeds. (White-box: committee
/// selection is below the facade's abstraction level.)
#[test]
fn fault_free_coin_is_always_common() {
    let mut gen = SmallRng::seed_from_u64(0xC01D);
    for _ in 0..40 {
        let n = gen.gen_range(1..64usize);
        let c = gen.gen_range(1..10usize);
        let plan = CommitteePlan::with_committee_count(n, c);
        let idx = gen.gen_range(0..10usize) % plan.count();
        let seed = gen.next_u64();
        let nodes = CoinFlipNode::network_with_committee(n, &plan, idx);
        let cfg = SimConfig::new(n, 0).with_seed(seed);
        let report = Simulation::new(cfg, nodes, Benign).run();
        let outs = honest_outputs(&report);
        assert_eq!(outs.len(), n, "n={n} c={c} idx={idx} seed={seed}");
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "n={n} c={c} idx={idx} seed={seed}: coin not common"
        );
    }
}

/// Committee plans partition the ID space for arbitrary (n, c).
#[test]
fn committee_plan_is_a_partition() {
    for n in [1usize, 2, 3, 7, 16, 99, 250, 499] {
        for c in [0usize, 1, 2, 5, 50, 599] {
            let plan = CommitteePlan::with_committee_count(n, c);
            let mut seen = vec![false; n];
            for k in 0..plan.count() {
                assert!(plan.size_of(k) >= 1, "n={n} c={c} k={k}");
                for m in plan.members(k) {
                    assert!(!seen[m.index()], "n={n} c={c}: {m:?} double-assigned");
                    seen[m.index()] = true;
                    assert_eq!(plan.committee_of(m), k, "n={n} c={c}");
                }
            }
            assert!(seen.into_iter().all(|s| s), "n={n} c={c}: gap in coverage");
        }
    }
}

/// The denial-cost formula is exact: the optimal rushing attack with
/// unlimited budget spends exactly ⌈(|S|+1)/2⌉ where S is the honest
/// flip sum it observed. (White-box: reads node flips mid-run.)
#[test]
fn killer_cost_matches_formula() {
    for n in 3usize..40 {
        for seed_salt in 0..2u64 {
            let seed = (n as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed_salt);
            let cfg = SimConfig::new(n, n).with_seed(seed);
            let nodes = CoinFlipNode::network(n);
            let mut sim =
                Simulation::new(cfg, nodes, CoinKiller::new(NonRushingPolicy::Guaranteed));
            sim.step();
            // Reconstruct the honest sum: flips of nodes that stayed
            // honest plus flips of the corrupted (they were honest when
            // they flipped).
            let total: i64 = sim
                .nodes()
                .iter()
                .filter_map(|nd| nd.flip())
                .map(|f| f as i64)
                .sum();
            let report = sim.into_report();
            let expected = analysis::corruptions_to_deny(total, 0) as usize;
            assert_eq!(
                report.corruptions_used, expected,
                "n={n} seed={seed} sum={total}"
            );
        }
    }
}
