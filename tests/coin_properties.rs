//! Integration: the common-coin protocols (Theorem 3 / Corollary 1)
//! measured as black boxes, including property-based committee checks.

use adaptive_ba::attacks::{CoinKiller, NonRushingPolicy};
use adaptive_ba::coin::{analysis, CoinFlipNode, CommitteePlan};
use adaptive_ba::sim::adversary::Benign;
use adaptive_ba::sim::{SimConfig, Simulation};
use proptest::prelude::*;

fn honest_outputs(report: &adaptive_ba::sim::RunReport) -> Vec<bool> {
    report
        .outputs
        .iter()
        .zip(&report.honest)
        .filter(|(_, h)| **h)
        .filter_map(|(o, _)| *o)
        .collect()
}

/// Theorem 3, measured: with budget √n/2 under the optimal rushing
/// attack, the coin is common with probability well above the analytic
/// 1/6 floor, and conditioned on commonality both values occur.
#[test]
fn theorem3_floor_holds_empirically() {
    let n = 144; // √n = 12, budget 6
    let t = 6;
    let trials = 300;
    let mut common = 0usize;
    let mut ones = 0usize;
    for seed in 0..trials {
        let cfg = SimConfig::new(n, t).with_seed(seed as u64);
        let report = Simulation::new(
            cfg,
            CoinFlipNode::network(n),
            CoinKiller::new(NonRushingPolicy::Guaranteed),
        )
        .run();
        let outs = honest_outputs(&report);
        if outs.windows(2).all(|w| w[0] == w[1]) {
            common += 1;
            if outs[0] {
                ones += 1;
            }
        }
    }
    let p_comm = common as f64 / trials as f64;
    assert!(
        p_comm >= 1.0 / 6.0,
        "Pr[Comm] = {p_comm} below the Theorem 3 floor"
    );
    // Definition 2(B): conditional bias bounded away from 0 and 1.
    let bias = ones as f64 / common as f64;
    assert!(
        (0.15..=0.85).contains(&bias),
        "conditional bias {bias} not bounded away from 0/1"
    );
}

/// The exact anti-concentration curve upper- and lower-bounds the
/// measured commonality within sampling error.
#[test]
fn measured_commonality_tracks_exact_theory() {
    let n = 64;
    let trials = 400;
    for t in [2usize, 4, 8] {
        let mut common = 0usize;
        for seed in 0..trials {
            let cfg = SimConfig::new(n, t).with_seed(seed as u64 + 50_000);
            let report = Simulation::new(
                cfg,
                CoinFlipNode::network(n),
                CoinKiller::new(NonRushingPolicy::Guaranteed),
            )
            .run();
            let outs = honest_outputs(&report);
            if outs.windows(2).all(|w| w[0] == w[1]) {
                common += 1;
            }
        }
        let measured = common as f64 / trials as f64;
        let theory = analysis::prob_coin_survives(n as u64, t as u64);
        assert!(
            (measured - theory).abs() < 0.08,
            "t={t}: measured {measured} vs theory {theory}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Fault-free Algorithm 1/2 always yields a common coin, for any
    /// network size, committee choice, and seed.
    #[test]
    fn fault_free_coin_is_always_common(
        n in 1usize..64,
        c in 1usize..10,
        idx_raw in 0usize..10,
        seed in any::<u64>(),
    ) {
        let plan = CommitteePlan::with_committee_count(n, c);
        let idx = idx_raw % plan.count();
        let nodes = CoinFlipNode::network_with_committee(n, &plan, idx);
        let cfg = SimConfig::new(n, 0).with_seed(seed);
        let report = Simulation::new(cfg, nodes, Benign).run();
        let outs = honest_outputs(&report);
        prop_assert_eq!(outs.len(), n);
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]));
    }

    /// Committee plans partition the ID space for arbitrary (n, c).
    #[test]
    fn committee_plan_is_a_partition(n in 1usize..500, c in 0usize..600) {
        let plan = CommitteePlan::with_committee_count(n, c);
        let mut seen = vec![false; n];
        for k in 0..plan.count() {
            prop_assert!(plan.size_of(k) >= 1);
            for m in plan.members(k) {
                prop_assert!(!seen[m.index()]);
                seen[m.index()] = true;
                prop_assert_eq!(plan.committee_of(m), k);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// The denial-cost formula is exact: the optimal rushing attack with
    /// unlimited budget spends exactly ⌈(|S|+1)/2⌉ where S is the honest
    /// flip sum it observed.
    #[test]
    fn killer_cost_matches_formula(n in 3usize..40, seed in any::<u64>()) {
        let cfg = SimConfig::new(n, n).with_seed(seed);
        let nodes = CoinFlipNode::network(n);
        let mut sim = Simulation::new(
            cfg,
            nodes,
            CoinKiller::new(NonRushingPolicy::Guaranteed),
        );
        sim.step();
        // Reconstruct the honest sum: flips of nodes that stayed honest
        // plus flips of the corrupted (they were honest when they
        // flipped).
        let total: i64 = sim
            .nodes()
            .iter()
            .filter_map(|nd| nd.flip())
            .map(|f| f as i64)
            .sum();
        let report = sim.into_report();
        let expected = analysis::corruptions_to_deny(total, 0) as usize;
        prop_assert_eq!(report.corruptions_used, expected,
            "n={} sum={}", n, total);
    }
}
