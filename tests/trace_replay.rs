//! Differential tests for trace capture/replay (`aba-check`).
//!
//! For fixed-seed scenarios spanning every network model, a recorded
//! trace re-drives the engine — with the replay adversary and replay
//! delivery standing in for the live strategy and network — and must
//! reproduce the live run's **entire** `TrialResult`, including the
//! delivered/dropped/delayed counters. This is the contract that makes
//! a trace a faithful repro artifact: nothing about a run escapes it.

use adaptive_ba::harness::replay_scenario;
use adaptive_ba::{
    AttackSpec, DelayScheduler, InputSpec, NetworkSpec, ProtocolSpec, ScenarioBuilder,
};

/// The six pinned scenarios: every network family, mixed protocols and
/// attacks, fixed seeds.
fn pinned() -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        (
            "paper-lv × full-attack × sync",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(42),
        ),
        (
            "chor-coan × split-vote × lossy",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .adversary(AttackSpec::SplitVote)
                .network(NetworkSpec::LossyLinks { p_drop: 0.15 })
                .max_rounds(300)
                .seed(7),
        ),
        (
            "phase-king × static-mirror × bounded-delay",
            ScenarioBuilder::new(13, 4)
                .protocol(ProtocolSpec::PhaseKing)
                .adversary(AttackSpec::StaticMirror)
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 2,
                    scheduler: DelayScheduler::Random,
                })
                .max_rounds(200)
                .seed(3),
        ),
        (
            "paper × crash × bounded-delay-adv",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::Paper { alpha: 2.0 })
                .adversary(AttackSpec::Crash { per_round: 1 })
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 3,
                    scheduler: DelayScheduler::DelayHonest,
                })
                .max_rounds(300)
                .seed(11),
        ),
        (
            "common-coin × coin-killer × partition",
            ScenarioBuilder::new(24, 6)
                .protocol(ProtocolSpec::CommonCoin)
                .adversary(AttackSpec::CoinKiller)
                .network(NetworkSpec::Partition {
                    groups: 2,
                    heal_round: 3,
                })
                .max_rounds(100)
                .seed(19),
        ),
        (
            "sampling-majority × poison × lossy",
            ScenarioBuilder::new(32, 2)
                .protocol(ProtocolSpec::SamplingMajority { iters: 0 })
                .adversary(AttackSpec::SamplingPoison)
                .inputs(InputSpec::Random)
                .network(NetworkSpec::LossyLinks { p_drop: 0.05 })
                .max_rounds(4_000)
                .seed(23),
        ),
    ]
}

#[test]
fn replay_is_bit_identical_across_all_network_models() {
    for (label, builder) in pinned() {
        let outcome = replay_scenario(builder.scenario());
        assert_eq!(
            outcome.live, outcome.replayed,
            "{label}: replay diverged from the live run"
        );
        assert!(outcome.is_faithful(), "{label}");
    }
}

#[test]
fn replayed_counters_survive_non_trivial_delivery() {
    // The lossy and delayed scenarios must actually exercise the
    // counters the replay has to reproduce (otherwise the differential
    // proves less than it claims).
    let lossy = replay_scenario(pinned()[1].1.scenario());
    assert!(lossy.live.dropped > 0, "lossy scenario dropped nothing");
    assert_eq!(lossy.live.dropped, lossy.replayed.dropped);
    let delayed = replay_scenario(pinned()[2].1.scenario());
    assert!(delayed.live.delayed > 0, "delay scenario delayed nothing");
    assert_eq!(delayed.live.delayed, delayed.replayed.delayed);
}

#[test]
fn replay_differential_is_deterministic() {
    // Recording twice produces the same pair — the trace itself is a
    // pure function of the scenario.
    let s = pinned()[3].1.clone();
    let a = replay_scenario(s.scenario());
    let b = replay_scenario(s.scenario());
    assert_eq!(a, b);
}
