//! Property-based integration tests: Definition 1 holds for arbitrary
//! (n, t, seed, inputs, protocol, adversary) draws; simulator laws hold
//! for arbitrary traffic.

use adaptive_ba::harness::{run_scenario, AttackSpec, InputSpec, ProtocolSpec, Scenario};
use proptest::prelude::*;

fn protocol_strategy() -> impl Strategy<Value = ProtocolSpec> {
    prop_oneof![
        Just(ProtocolSpec::Paper { alpha: 2.0 }),
        Just(ProtocolSpec::PaperLasVegas { alpha: 2.0 }),
        Just(ProtocolSpec::PaperLiteralCoin { alpha: 2.0 }),
        Just(ProtocolSpec::ChorCoan { beta: 1.0 }),
        Just(ProtocolSpec::RabinDealer),
        Just(ProtocolSpec::PhaseKing),
    ]
}

fn attack_strategy() -> impl Strategy<Value = AttackSpec> {
    prop_oneof![
        Just(AttackSpec::Benign),
        Just(AttackSpec::StaticSilent),
        Just(AttackSpec::StaticMirror),
        (1usize..3).prop_map(|per_round| AttackSpec::Crash { per_round }),
        Just(AttackSpec::SplitVote),
        Just(AttackSpec::FullAttack),
        (0usize..5).prop_map(|q| AttackSpec::FullAttackCapped { q }),
    ]
}

fn input_strategy() -> impl Strategy<Value = InputSpec> {
    prop_oneof![
        Just(InputSpec::AllSame(true)),
        Just(InputSpec::AllSame(false)),
        Just(InputSpec::Split),
        Just(InputSpec::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// The headline property: any drawn configuration satisfies
    /// termination, agreement, and validity.
    #[test]
    fn definition1_holds(
        t in 0usize..6,
        extra in 1usize..12,
        protocol in protocol_strategy(),
        attack in attack_strategy(),
        inputs in input_strategy(),
        seed in any::<u64>(),
    ) {
        let n = 3 * t + extra; // always ≥ 3t+1
        let s = Scenario::new(n, t)
            .with_protocol(protocol)
            .with_attack(attack)
            .with_inputs(inputs)
            .with_seed(seed)
            .with_max_rounds(60_000);
        let r = run_scenario(&s);
        prop_assert!(r.terminated, "{}/{} n={n} t={t}", protocol.name(), attack.name());
        prop_assert!(r.agreement, "{}/{} n={n} t={t}", protocol.name(), attack.name());
        if let Some(valid) = r.validity {
            prop_assert!(valid, "{}/{} n={n} t={t}", protocol.name(), attack.name());
        }
        // The adversary never exceeds its budget.
        prop_assert!(r.corruptions <= t);
    }

    /// Determinism as a property: identical scenarios yield identical
    /// results.
    #[test]
    fn runs_are_pure_functions_of_seed(
        t in 0usize..4,
        extra in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n = 3 * t + extra;
        let s = Scenario::new(n, t)
            .with_attack(AttackSpec::FullAttack)
            .with_seed(seed)
            .with_max_rounds(60_000);
        prop_assert_eq!(run_scenario(&s), run_scenario(&s));
    }

    /// Validity is independent of the adversary: uniform inputs always
    /// come back out.
    #[test]
    fn validity_under_any_attack(
        b in any::<bool>(),
        attack in attack_strategy(),
        seed in any::<u64>(),
    ) {
        let s = Scenario::new(13, 4)
            .with_attack(attack)
            .with_inputs(InputSpec::AllSame(b))
            .with_seed(seed)
            .with_max_rounds(60_000);
        let r = run_scenario(&s);
        prop_assert_eq!(r.decision, Some(b));
    }
}
