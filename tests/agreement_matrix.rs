//! Integration: Definition 1 must hold for every protocol × adversary ×
//! input × size combination (the whp variants at these sizes have
//! negligible failure probability, so a single violation is a bug).

use adaptive_ba::{AttackSpec, InputSpec, ProtocolSpec, ScenarioBuilder};

const PROTOCOLS: &[ProtocolSpec] = &[
    ProtocolSpec::Paper { alpha: 2.0 },
    ProtocolSpec::PaperLasVegas { alpha: 2.0 },
    ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
    ProtocolSpec::ChorCoan { beta: 1.0 },
    ProtocolSpec::RabinDealer,
    ProtocolSpec::PhaseKing,
];

const ATTACKS: &[AttackSpec] = &[
    AttackSpec::Benign,
    AttackSpec::StaticSilent,
    AttackSpec::StaticMirror,
    AttackSpec::Crash { per_round: 1 },
    AttackSpec::SplitVote,
    AttackSpec::FullAttack,
    AttackSpec::FullAttackFrugal,
];

/// The whp variant (fixed `c` phases) is *allowed* to fail agreement
/// with small probability, and at tiny `n` with α = 2 against the
/// strongest adaptive attacks that probability is noticeable — exactly
/// what Theorem 2's `α − 4√α ≥ γ` constant is about. Deterministic
/// agreement assertions therefore apply to everything except whp ×
/// strong-adaptive combinations (covered probabilistically below).
fn agreement_is_guaranteed(protocol: ProtocolSpec, attack: AttackSpec) -> bool {
    let whp = matches!(protocol, ProtocolSpec::Paper { .. });
    let strong_adaptive = matches!(
        attack,
        AttackSpec::SplitVote | AttackSpec::FullAttack | AttackSpec::FullAttackFrugal
    );
    !(whp && strong_adaptive)
}

#[test]
fn matrix_small() {
    for &(n, t) in &[(4usize, 1usize), (7, 2), (16, 5)] {
        for &protocol in PROTOCOLS {
            for &attack in ATTACKS {
                for inputs in [
                    InputSpec::AllSame(true),
                    InputSpec::AllSame(false),
                    InputSpec::Split,
                ] {
                    for seed in 0..2 {
                        let s = ScenarioBuilder::new(n, t)
                            .protocol(protocol)
                            .adversary(attack)
                            .inputs(inputs)
                            .seed(seed)
                            .max_rounds(40_000);
                        let r = s.run();
                        assert!(
                            r.terminated,
                            "{}/{} n={n} t={t} seed={seed}: no termination",
                            protocol.name(),
                            attack.name()
                        );
                        if agreement_is_guaranteed(protocol, attack) {
                            assert!(
                                r.agreement,
                                "{}/{} n={n} t={t} seed={seed}: agreement broken",
                                protocol.name(),
                                attack.name()
                            );
                        }
                        // Validity is deterministic for every variant:
                        // with uniform honest inputs, phase 1 locks the
                        // value in (Lemma 2) before any coin is touched.
                        if let Some(valid) = r.validity {
                            assert!(
                                valid,
                                "{}/{} n={n} t={t} seed={seed}: validity broken",
                                protocol.name(),
                                attack.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The probabilistic side of the whp guarantee: agreement rate under the
/// full attack improves as α buys more phases.
#[test]
fn whp_agreement_rate_improves_with_alpha() {
    let trials = 24u64;
    let rate = |alpha: f64| {
        let mut ok = 0;
        for seed in 0..trials {
            let s = ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::Paper { alpha })
                .adversary(AttackSpec::FullAttack)
                .inputs(InputSpec::Split)
                .seed(seed)
                .max_rounds(40_000);
            if s.run().agreement {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    };
    let low = rate(1.0);
    let high = rate(8.0);
    assert!(
        high >= low,
        "agreement rate must not degrade with alpha: α=1 gives {low}, α=8 gives {high}"
    );
    assert!(high >= 0.7, "α=8 agreement rate only {high}");
}

#[test]
fn matrix_medium_strongest_attack() {
    // Focus the expensive sizes on the strongest adversary.
    for &(n, t) in &[(31usize, 10usize), (64, 21), (100, 33)] {
        for &protocol in PROTOCOLS {
            let s = ScenarioBuilder::new(n, t)
                .protocol(protocol)
                .adversary(AttackSpec::FullAttack)
                .inputs(InputSpec::Split)
                .seed(99)
                .max_rounds(60_000);
            let r = s.run();
            assert!(r.terminated, "{} n={n} t={t}: {r:?}", protocol.name());
            if agreement_is_guaranteed(protocol, AttackSpec::FullAttack) {
                assert!(r.agreement, "{} n={n} t={t}: {r:?}", protocol.name());
            }
        }
    }
}

#[test]
fn t_zero_everything_converges_in_a_blink() {
    for &protocol in PROTOCOLS {
        let s = ScenarioBuilder::new(8, 0)
            .protocol(protocol)
            .adversary(AttackSpec::Benign)
            .inputs(InputSpec::Split)
            .seed(5);
        let r = s.run();
        assert!(r.terminated && r.agreement, "{}", protocol.name());
        // ≤ 4 phases even in the 3-round literal mode.
        assert!(r.rounds <= 12, "{}: {} rounds", protocol.name(), r.rounds);
    }
}

#[test]
fn maximal_resilience_boundary() {
    // n = 3t + 1 exactly — the paper's optimal-resilience edge.
    for &(n, t) in &[(7usize, 2usize), (13, 4), (22, 7), (31, 10)] {
        assert_eq!(n, 3 * t + 1);
        let s = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .inputs(InputSpec::Split)
            .seed(17)
            .max_rounds(60_000);
        let r = s.run();
        assert!(r.terminated && r.agreement, "n={n} t={t}: {r:?}");
    }
}

#[test]
fn mixed_random_inputs_agree() {
    for seed in 0..6 {
        let s = ScenarioBuilder::new(25, 8)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .inputs(InputSpec::Random)
            .seed(seed)
            .max_rounds(40_000);
        let r = s.run();
        assert!(r.terminated && r.agreement, "seed {seed}: {r:?}");
    }
}
