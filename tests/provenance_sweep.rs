//! Campaign-level provenance artifacts are part of the deterministic
//! reproducibility surface: the per-trial summaries, the blame lines,
//! and the causal-graph exports for the violating cell must come out
//! byte-identical at any worker count and any in-round thread count.

use adaptive_ba::{
    AttackSpec, CampaignSpec, DelayScheduler, NetworkSpec, ProtocolSpec, RunOptions, StopRule,
};
use std::path::{Path, PathBuf};

/// The golden grid: one violating cell (Phase-King under the
/// adversarial scheduler) and clean cells around it.
fn spec() -> CampaignSpec {
    CampaignSpec::new("prov")
        .sizes(&[(13, 4)])
        .protocols(&[
            ProtocolSpec::PhaseKing,
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ])
        .attacks(&[AttackSpec::StaticMirror])
        .networks(&[
            NetworkSpec::Synchronous,
            NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::DelayHonest,
            },
        ])
        .round_cap(adaptive_ba::RoundCap::Fixed(200))
        .stop(StopRule::fixed(2))
        .oracles(true)
        .seed(5)
}

fn files(d: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(d)
        .expect("provenance dir exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    names
}

fn assert_identical_trees(a: &Path, b: &Path, what: &str) {
    let names = files(a);
    assert_eq!(names, files(b), "{what}: file sets differ");
    for name in &names {
        let x = std::fs::read_to_string(a.join(name)).unwrap();
        let y = std::fs::read_to_string(b.join(name)).unwrap();
        assert_eq!(x, y, "{what}: {name} bytes differ");
    }
}

fn run(
    dir: &Path,
    sub: &str,
    workers: usize,
    threads: usize,
) -> (adaptive_ba::CampaignResult, PathBuf) {
    let prov_dir = dir.join(sub);
    let result = spec().run_with(&RunOptions {
        workers,
        threads,
        provenance_dir: Some(prov_dir.clone()),
        ..RunOptions::default()
    });
    (result, prov_dir)
}

#[test]
fn provenance_artifacts_are_worker_count_invariant() {
    let dir = std::env::temp_dir().join("aba_provenance_sweep_workers");
    let _ = std::fs::remove_dir_all(&dir);
    let (serial, serial_dir) = run(&dir, "w1", 1, 0);
    let (parallel, parallel_dir) = run(&dir, "w4", 4, 0);
    assert_eq!(serial, parallel, "summaries diverged across worker counts");
    assert_identical_trees(&serial_dir, &parallel_dir, "workers 1 vs 4");

    let names = files(&serial_dir);
    // The campaign summary artifact is always present...
    assert!(
        names.contains(&"prov.provenance.txt".to_string()),
        "campaign provenance summary missing: {names:?}"
    );
    // ...and the violating cell emitted its causal graph, in both
    // formats, named by cell index.
    assert!(
        names.iter().any(|f| f.ends_with(".cone.dot")),
        "violating cell must emit a DOT causal graph: {names:?}"
    );
    assert!(
        names.iter().any(|f| f.ends_with(".cone.jsonl")),
        "violating cell must emit a line-JSON causal graph: {names:?}"
    );

    let summary = std::fs::read_to_string(serial_dir.join("prov.provenance.txt")).unwrap();
    // Cells in grid order, trials in index order, per-node lines.
    assert!(summary.contains("== cell "), "cell headers: {summary}");
    assert!(summary.contains("-- trial 0 --"), "trial headers");
    assert!(summary.contains("node v0 "), "per-node profile lines");
    // The disagreement cell carries its blame line.
    assert!(
        summary.contains("blame blamed=["),
        "violating cell's blame line missing from:\n{summary}"
    );

    let dot = std::fs::read_to_string(
        serial_dir.join(names.iter().find(|f| f.ends_with(".cone.dot")).unwrap()),
    )
    .unwrap();
    assert!(dot.starts_with("digraph provenance"), "DOT header: {dot}");
    let jsonl = std::fs::read_to_string(
        serial_dir.join(names.iter().find(|f| f.ends_with(".cone.jsonl")).unwrap()),
    )
    .unwrap();
    assert!(jsonl.lines().count() > 1, "line-JSON graph has records");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn provenance_artifacts_are_thread_count_invariant() {
    let dir = std::env::temp_dir().join("aba_provenance_sweep_threads");
    let _ = std::fs::remove_dir_all(&dir);
    let (serial, serial_dir) = run(&dir, "t1", 2, 1);
    let (threaded, threaded_dir) = run(&dir, "t4", 2, 4);
    assert_eq!(serial, threaded, "summaries diverged across thread counts");
    assert_identical_trees(&serial_dir, &threaded_dir, "threads 1 vs 4");
    let _ = std::fs::remove_dir_all(&dir);
}
