//! Integration: the paper's lemmas, checked on live executions.
//!
//! These tests step the simulation round by round and inspect honest node
//! state through the full-information view — the same lens the adversary
//! gets — asserting the per-phase invariants the proofs rely on.

use adaptive_ba::agreement::{BaConfig, BaNodeView, CommitteeBa};
use adaptive_ba::attacks::{AdaptiveFullAttack, BudgetPolicy};
use adaptive_ba::sim::adversary::Benign;
use adaptive_ba::sim::{NodeId, Protocol, SimConfig, Simulation};

fn split_inputs(n: usize) -> Vec<bool> {
    (0..n).map(|i| i % 2 == 0).collect()
}

/// Lemma 3: after round 1 of any phase, no two honest nodes have decided
/// on different values.
#[test]
fn lemma3_deciders_share_value() {
    for seed in 0..10 {
        let n = 31;
        let t = 10;
        let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
        let inputs = split_inputs(n);
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(n, t).with_seed(seed).with_max_rounds(4_000);
        let mut sim = Simulation::new(
            sim_cfg,
            nodes,
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
        );
        let mut round = 0u64;
        loop {
            let more = sim.step();
            // After an even engine round (subround 1 received):
            if round.is_multiple_of(2) {
                let decided_vals: Vec<bool> = sim
                    .nodes()
                    .iter()
                    .enumerate()
                    .filter(|(i, node)| {
                        !sim.ledger().is_corrupted(NodeId::new(*i as u32))
                            && node.ba_decided()
                            && !node.halted()
                    })
                    .map(|(_, node)| node.ba_val())
                    .collect();
                assert!(
                    decided_vals.windows(2).all(|w| w[0] == w[1]),
                    "seed {seed} round {round}: honest deciders disagree"
                );
            }
            if !more {
                break;
            }
            round += 1;
        }
    }
}

/// Lemma 2 and validity: if at least n−t honest nodes share a value at a
/// phase start, everyone adopts it that phase (here: uniform inputs end
/// the protocol immediately, adversary notwithstanding).
#[test]
fn lemma2_supermajority_locks_in() {
    for seed in 0..5 {
        let n = 22;
        let t = 7;
        let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
        let inputs = vec![true; n];
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(n, t).with_seed(seed);
        let report = Simulation::new(
            sim_cfg,
            nodes,
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
        )
        .run();
        // Phase 1 decides + finishes, farewell through phase 2: ≤ 4 rounds.
        assert!(
            report.rounds <= 4,
            "seed {seed}: {} rounds despite unanimous start",
            report.rounds
        );
        assert!(report
            .outputs
            .iter()
            .zip(&report.honest)
            .filter(|(_, h)| **h)
            .all(|(o, _)| *o == Some(true)));
    }
}

/// Lemma 4: once any honest node sets `finish` in phase i, every honest
/// node halts by the end of phase i+2.
#[test]
fn lemma4_termination_cascade() {
    for seed in 0..10 {
        let n = 31;
        let t = 10;
        let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
        let rpp = cfg.rounds_per_phase();
        let inputs = split_inputs(n);
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(n, t).with_seed(seed).with_max_rounds(4_000);
        let mut sim = Simulation::new(
            sim_cfg,
            nodes,
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
        );
        let mut first_finish_phase: Option<u64> = None;
        let mut round = 0u64;
        loop {
            let more = sim.step();
            if first_finish_phase.is_none() {
                let finished = sim.nodes().iter().enumerate().any(|(i, node)| {
                    !sim.ledger().is_corrupted(NodeId::new(i as u32)) && node.ba_finished()
                });
                if finished {
                    first_finish_phase = Some(round / rpp + 1);
                }
            }
            if !more {
                break;
            }
            round += 1;
        }
        let report = sim.into_report();
        assert!(report.all_halted, "seed {seed}");
        let fp = first_finish_phase.expect("somebody finished");
        let last_halt = report
            .halt_rounds
            .iter()
            .zip(&report.honest)
            .filter(|(_, h)| **h)
            .filter_map(|(r, _)| *r)
            .max()
            .unwrap();
        let deadline = (fp + 2) * rpp; // end of phase fp+2
        assert!(
            last_halt < deadline,
            "seed {seed}: finish in phase {fp} but last halt at round {last_halt} \
             (deadline {deadline})"
        );
    }
}

/// The whp variant runs at most `c` phases (`2c` rounds) — Algorithm 3's
/// loop bound — even when the adversary denies every coin.
#[test]
fn whp_round_budget_is_respected() {
    for seed in 0..5 {
        let n = 31;
        let t = 10;
        let cfg = BaConfig::paper(n, t, 2.0).unwrap();
        let budget = cfg.whp_round_budget();
        let inputs = split_inputs(n);
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(n, t)
            .with_seed(seed)
            .with_max_rounds(100_000);
        let report = Simulation::new(
            sim_cfg,
            nodes,
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
        )
        .run();
        assert!(
            report.rounds <= budget,
            "seed {seed}: whp run took {} rounds, budget {budget}",
            report.rounds
        );
    }
}

/// Theorem 3 as an invariant of full runs: with a benign adversary, every
/// coin phase produces a *common* value — all honest nodes leave any
/// phase with identical `val` whenever no threshold case fired.
#[test]
fn benign_coin_phases_are_always_common() {
    for seed in 0..10 {
        let n = 16;
        let t = 5;
        let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
        let inputs = split_inputs(n);
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(n, t).with_seed(seed).with_max_rounds(1_000);
        let mut sim = Simulation::new(sim_cfg, nodes, Benign);
        let mut round = 0u64;
        loop {
            let more = sim.step();
            if round % 2 == 1 {
                // End of a phase: all honest nodes must share val (the
                // coin is common without Byzantine interference, and
                // threshold adoptions share b_i by Lemma 3).
                let vals: Vec<bool> = sim
                    .nodes()
                    .iter()
                    .filter(|node| !node.halted())
                    .map(|node| node.ba_val())
                    .collect();
                assert!(
                    vals.windows(2).all(|w| w[0] == w[1]),
                    "seed {seed} round {round}: benign phase not common"
                );
            }
            if !more {
                break;
            }
            round += 1;
        }
    }
}
