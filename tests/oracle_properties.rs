//! Property sweeps for the online lemma oracles.
//!
//! The headline: the paper's Section-1 early-termination claim — when
//! the adaptive adversary performs only `q < t` corruptions, running
//! time depends on `q`, not the provisioned budget `t` — is pinned as
//! an *oracle property over a seeded grid*, not just as experiment
//! output. Every cell of `q ∈ {0, t/4, t/2, t−1}` × the three paper
//! variants runs with the `EarlyTerminationBudget` oracle armed; the
//! oracle must never fire and the measured rounds must respect the
//! `q`-dependent allowance.

use adaptive_ba::harness::check::early_termination_allowance;
use adaptive_ba::{AttackSpec, InputSpec, ProtocolSpec, ScenarioBuilder};

#[test]
fn early_termination_oracle_never_fires_on_the_q_grid() {
    let (n, t) = (31usize, 10usize);
    let protocols = [
        ProtocolSpec::Paper { alpha: 2.0 },
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
    ];
    for q in [0, t / 4, t / 2, t - 1] {
        for protocol in protocols {
            let checked = ScenarioBuilder::new(n, t)
                .protocol(protocol)
                .adversary(AttackSpec::FullAttackCapped { q })
                .seed(9_000)
                .max_rounds(40_000)
                .trials(4)
                .check_batch();
            let allowance = early_termination_allowance(n, q);
            for c in checked {
                assert!(
                    c.is_clean(),
                    "{} q={q} seed={}: {:?}",
                    protocol.name(),
                    c.result.seed,
                    c.oracle.violations
                );
                assert!(c.result.terminated);
                assert!(
                    c.result.rounds <= allowance,
                    "{} q={q} seed={}: {} rounds > allowance {allowance}",
                    protocol.name(),
                    c.result.seed,
                    c.result.rounds
                );
                assert!(
                    c.result.corruptions <= q,
                    "cap q={q} exceeded: {}",
                    c.result.corruptions
                );
            }
        }
    }
}

#[test]
fn rounds_grow_with_q_under_the_oracle() {
    // The allowance is a ceiling, not the story: measured rounds must
    // actually track q (monotone means over a small seed batch), while
    // staying clean.
    let (n, t) = (31usize, 10usize);
    let mean = |q: usize| {
        let checked = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttackCapped { q })
            .seed(500)
            .max_rounds(40_000)
            .trials(6)
            .check_batch();
        checked.iter().for_each(|c| assert!(c.is_clean()));
        checked.iter().map(|c| c.result.rounds as f64).sum::<f64>() / 6.0
    };
    let idle = mean(0);
    let heavy = mean(t - 1);
    assert!(heavy >= idle, "rounds not monotone in q: {idle} vs {heavy}");
}

#[test]
fn oracles_stay_silent_on_a_clean_protocol_matrix() {
    // Agreement/validity/CONGEST/budget oracles across the protocols
    // that claim full agreement, under their applicable attacks on the
    // synchronous network: no false positives, and the checked result
    // is bit-identical to the plain run.
    for protocol in [
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
        ProtocolSpec::BenOrPrivate,
        ProtocolSpec::PhaseKing,
    ] {
        for attack in [
            AttackSpec::Benign,
            AttackSpec::StaticSilent,
            AttackSpec::Crash { per_round: 1 },
        ] {
            let b = ScenarioBuilder::new(16, 5)
                .protocol(protocol)
                .adversary(attack)
                .inputs(InputSpec::AllSame(true))
                .seed(77);
            let checked = b.check();
            assert!(
                checked.is_clean(),
                "{} × {}: {:?}",
                protocol.name(),
                attack.name(),
                checked.oracle.violations
            );
            assert_eq!(checked.result, b.run(), "oracles must not perturb the run");
        }
    }
}

#[test]
fn oracles_flag_whp_agreement_failures_when_they_happen() {
    // The whp (non-Las-Vegas) paper variant is *allowed* to fail
    // agreement with small probability — when it does, the online
    // oracle must catch it and supply the round. At n=16, t=5 under the
    // full attack, several of these 40 seeds fail (~10%); the exact
    // seeds are discovered, not pinned.
    let mut result_failed = 0;
    for seed in 0..40 {
        let checked = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::Paper { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .seed(seed)
            .check();
        if !checked.result.agreement {
            result_failed += 1;
            let first = checked
                .oracle
                .first()
                .unwrap_or_else(|| panic!("seed {seed}: post-hoc failure missed online"));
            assert_eq!(first.oracle, "agreement-at-decision", "seed {seed}");
            assert!(
                first.round < checked.result.rounds,
                "seed {seed}: violation round {} not inside the run",
                first.round
            );
        }
    }
    assert!(
        result_failed > 0,
        "the grid was expected to contain whp agreement failures"
    );
}
