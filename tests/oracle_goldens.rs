//! Golden tests pinning oracle output on fixed seeds.
//!
//! The known-violating scenario: deterministic Phase-King under the
//! adversarial bounded-delay scheduler with a static equivocator.
//! Phase-King's correctness argument leans on lock-step rounds; the
//! adversarial scheduler starves the king's broadcast, and honest nodes
//! decide different values. The violation is deterministic: a stable
//! first-violation round, a stable shrunken repro — across runs,
//! processes, and sweep worker counts.

use adaptive_ba::harness::{check_scenario, shrink_violation};
use adaptive_ba::{
    AttackSpec, CampaignSpec, DelayScheduler, InputSpec, NetworkSpec, ProtocolSpec, RunOptions,
    ScenarioBuilder, StopRule,
};

fn violating() -> ScenarioBuilder {
    ScenarioBuilder::new(13, 4)
        .protocol(ProtocolSpec::PhaseKing)
        .adversary(AttackSpec::StaticMirror)
        .inputs(InputSpec::Split)
        .network(NetworkSpec::BoundedDelay {
            max_delay: 2,
            scheduler: DelayScheduler::DelayHonest,
        })
        .max_rounds(200)
        .seed(5)
}

#[test]
fn known_violation_has_a_stable_first_round() {
    let checked = violating().check();
    assert!(!checked.is_clean());
    assert!(
        !checked.result.agreement,
        "the trial itself records the failure"
    );
    let first = checked.oracle.first().expect("violations retained");
    // Golden: the committed first-violation round. A drift here means
    // engine/network/oracle semantics changed — update deliberately.
    assert_eq!(first.oracle, "agreement-at-decision");
    assert_eq!(first.round, 14, "first-violation round drifted");
    // Stable across repeated checks in-process.
    assert_eq!(check_scenario(violating().scenario()), checked);
}

#[test]
fn shrunken_repro_is_stable() {
    let repro = shrink_violation(violating().scenario()).expect("scenario violates");
    // Golden: the shrinker's fixed point. n halves 13 → 8 (t rescales to
    // 2), the seed shrinks to 0, and the round prefix truncates to just
    // past the (shrunken) first violation.
    assert_eq!(
        (repro.shrunk.n, repro.shrunk.t, repro.shrunk.seed),
        (8, 2, 0),
        "shrunken scenario drifted: {:?}",
        repro.shrunk
    );
    assert_eq!(repro.shrunk.max_rounds, 9, "round prefix drifted");
    let first = repro.shrunk_oracle.first().expect("still violating");
    assert_eq!((first.oracle, first.round), ("agreement-at-decision", 8));
    // And it is deterministic.
    assert_eq!(shrink_violation(violating().scenario()), Some(repro));
}

#[test]
fn sweep_oracle_column_and_repro_are_worker_count_invariant() {
    let dir = std::env::temp_dir().join("aba_oracle_golden_sweep");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = CampaignSpec::new("golden")
        .sizes(&[(13, 4)])
        .protocols(&[
            ProtocolSpec::PhaseKing,
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ])
        .attacks(&[AttackSpec::StaticMirror])
        .networks(&[
            NetworkSpec::Synchronous,
            NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::DelayHonest,
            },
        ])
        .round_cap(adaptive_ba::RoundCap::Fixed(200))
        .stop(StopRule::fixed(2))
        .oracles(true)
        .seed(5);
    let run = |workers: usize, sub: &str| {
        let repro_dir = dir.join(sub);
        let result = spec.run_with(&RunOptions {
            workers,
            checkpoint: None,
            repro_dir: Some(repro_dir.clone()),
            ..RunOptions::default()
        });
        (result, repro_dir)
    };
    let (serial, serial_dir) = run(1, "w1");
    let (parallel, parallel_dir) = run(4, "w4");
    // Summaries and artifacts byte-identical at any worker count.
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
    // The violating cell tallied violations; the clean cells none.
    let violating = serial
        .find(|c| c.protocol == "phase-king" && c.network == "bounded-delay-adv(2)")
        .expect("cell present");
    assert!(violating.oracle_violations > 0);
    assert!(serial
        .cells
        .iter()
        .filter(|c| c.network == "sync")
        .all(|c| c.oracle_violations == 0));
    // The CSV carries the column.
    assert!(serial
        .to_csv()
        .lines()
        .next()
        .unwrap()
        .ends_with(",oracle_violations"));
    // Repro artifacts: same file set, byte-identical content.
    let files = |d: &std::path::Path| {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .expect("repro dir exists")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let names = files(&serial_dir);
    assert!(!names.is_empty(), "a violating cell must emit a repro");
    assert_eq!(names, files(&parallel_dir));
    for name in &names {
        let a = std::fs::read_to_string(serial_dir.join(name)).unwrap();
        let b = std::fs::read_to_string(parallel_dir.join(name)).unwrap();
        assert_eq!(a, b, "{name}: repro bytes differ across worker counts");
        assert!(a.contains("\"first_violation\""), "{name}: {a}");
        assert!(a.contains("\"shrunk_scenario\""), "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oracle_campaign_checkpoint_roundtrips() {
    // An oracle-enabled campaign's JSON doubles as a checkpoint: parse
    // it back, and the violations column survives bit for bit; the
    // fingerprint marks the campaign as oracle-checked.
    let spec = CampaignSpec::new("golden-ckpt")
        .sizes(&[(13, 4)])
        .protocols(&[ProtocolSpec::PhaseKing])
        .attacks(&[AttackSpec::StaticMirror])
        .networks(&[NetworkSpec::BoundedDelay {
            max_delay: 2,
            scheduler: DelayScheduler::DelayHonest,
        }])
        .round_cap(adaptive_ba::RoundCap::Fixed(200))
        .stop(StopRule::fixed(2))
        .oracles(true)
        .seed(5);
    let result = spec.run();
    assert!(spec.fingerprint().ends_with("|oracles"));
    let parsed = adaptive_ba::sweep::checkpoint::parse(&result.to_json()).expect("parses");
    assert_eq!(parsed.cells, result.cells);
    assert!(parsed.cells[0].oracle_violations > 0);
}
