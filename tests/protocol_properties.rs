//! Property-style integration tests, deterministically sampled:
//! Definition 1 holds for pseudorandom (n, t, seed, inputs, protocol,
//! adversary) draws. (This workspace builds with no network access, so
//! instead of proptest the configurations are drawn from a fixed-seed
//! generator — every CI run checks the identical sample.)

use adaptive_ba::{AttackSpec, InputSpec, ProtocolSpec, ScenarioBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

fn random_protocol(gen: &mut SmallRng) -> ProtocolSpec {
    match gen.gen_range(0..6u32) {
        0 => ProtocolSpec::Paper { alpha: 2.0 },
        1 => ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        2 => ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
        3 => ProtocolSpec::ChorCoan { beta: 1.0 },
        4 => ProtocolSpec::RabinDealer,
        _ => ProtocolSpec::PhaseKing,
    }
}

fn random_attack(gen: &mut SmallRng) -> AttackSpec {
    match gen.gen_range(0..7u32) {
        0 => AttackSpec::Benign,
        1 => AttackSpec::StaticSilent,
        2 => AttackSpec::StaticMirror,
        3 => AttackSpec::Crash {
            per_round: gen.gen_range(1..3usize),
        },
        4 => AttackSpec::SplitVote,
        5 => AttackSpec::FullAttack,
        _ => AttackSpec::FullAttackCapped {
            q: gen.gen_range(0..5usize),
        },
    }
}

fn random_inputs(gen: &mut SmallRng) -> InputSpec {
    match gen.gen_range(0..4u32) {
        0 => InputSpec::AllSame(true),
        1 => InputSpec::AllSame(false),
        2 => InputSpec::Split,
        _ => InputSpec::Random,
    }
}

/// The headline property: any drawn configuration satisfies termination,
/// agreement, and validity.
#[test]
fn definition1_holds_on_sampled_configurations() {
    let mut gen = SmallRng::seed_from_u64(0xD1F0);
    for _ in 0..48 {
        let t = gen.gen_range(0..6usize);
        let n = 3 * t + gen.gen_range(1..12usize); // always ≥ 3t + 1
        let protocol = random_protocol(&mut gen);
        let attack = random_attack(&mut gen);
        let inputs = random_inputs(&mut gen);
        let seed = gen.next_u64();
        let r = ScenarioBuilder::new(n, t)
            .protocol(protocol)
            .adversary(attack)
            .inputs(inputs)
            .seed(seed)
            .max_rounds(60_000)
            .run();
        let ctx = format!(
            "{}/{} n={n} t={t} seed={seed}",
            protocol.name(),
            attack.name()
        );
        assert!(r.terminated, "{ctx}: no termination");
        assert!(r.agreement, "{ctx}: agreement broken");
        if let Some(valid) = r.validity {
            assert!(valid, "{ctx}: validity broken");
        }
        // The adversary never exceeds its budget.
        assert!(r.corruptions <= t, "{ctx}: budget exceeded");
    }
}

/// Determinism as a property: identical scenarios yield identical
/// results.
#[test]
fn runs_are_pure_functions_of_seed() {
    let mut gen = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..12 {
        let t = gen.gen_range(0..4usize);
        let n = 3 * t + gen.gen_range(1..8usize);
        let seed = gen.next_u64();
        let b = ScenarioBuilder::new(n, t)
            .adversary(AttackSpec::FullAttack)
            .seed(seed)
            .max_rounds(60_000);
        assert_eq!(b.run(), b.run(), "n={n} t={t} seed={seed}");
    }
}

/// Validity is independent of the adversary: uniform inputs always come
/// back out.
#[test]
fn validity_under_any_attack() {
    let mut gen = SmallRng::seed_from_u64(0x7A11);
    for _ in 0..24 {
        let b = gen.gen::<bool>();
        let attack = random_attack(&mut gen);
        let seed = gen.next_u64();
        let r = ScenarioBuilder::new(13, 4)
            .adversary(attack)
            .inputs(InputSpec::AllSame(b))
            .seed(seed)
            .max_rounds(60_000)
            .run();
        assert_eq!(
            r.decision,
            Some(b),
            "{} seed={seed} input={b}",
            attack.name()
        );
    }
}
