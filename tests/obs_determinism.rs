//! The observability contract on the deterministic channel: an
//! instrumented replay must reproduce the live run's event log and
//! metrics registry **byte-for-byte** across every network family.
//!
//! These are the same six pinned scenarios as `tests/trace_replay.rs` —
//! the trace-faithfulness differential — extended to the `aba-obs`
//! channel: if the rendered event log or registry ever diverges between
//! a live run and its replay, either a probe hook slipped out of
//! logical time or the replay stopped re-driving some engine phase.

use adaptive_ba::{
    observe_replay, observe_scenario, AttackSpec, DelayScheduler, InputSpec, NetworkSpec,
    ProtocolSpec, ScenarioBuilder,
};

/// The six pinned scenarios: every network family, mixed protocols and
/// attacks, fixed seeds (kept in lockstep with `tests/trace_replay.rs`).
fn pinned() -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        (
            "paper-lv × full-attack × sync",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(42),
        ),
        (
            "chor-coan × split-vote × lossy",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .adversary(AttackSpec::SplitVote)
                .network(NetworkSpec::LossyLinks { p_drop: 0.15 })
                .max_rounds(300)
                .seed(7),
        ),
        (
            "phase-king × static-mirror × bounded-delay",
            ScenarioBuilder::new(13, 4)
                .protocol(ProtocolSpec::PhaseKing)
                .adversary(AttackSpec::StaticMirror)
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 2,
                    scheduler: DelayScheduler::Random,
                })
                .max_rounds(200)
                .seed(3),
        ),
        (
            "paper × crash × bounded-delay-adv",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::Paper { alpha: 2.0 })
                .adversary(AttackSpec::Crash { per_round: 1 })
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 3,
                    scheduler: DelayScheduler::DelayHonest,
                })
                .max_rounds(300)
                .seed(11),
        ),
        (
            "common-coin × coin-killer × partition",
            ScenarioBuilder::new(24, 6)
                .protocol(ProtocolSpec::CommonCoin)
                .adversary(AttackSpec::CoinKiller)
                .network(NetworkSpec::Partition {
                    groups: 2,
                    heal_round: 3,
                })
                .max_rounds(100)
                .seed(19),
        ),
        (
            "sampling-majority × poison × lossy",
            ScenarioBuilder::new(32, 2)
                .protocol(ProtocolSpec::SamplingMajority { iters: 0 })
                .adversary(AttackSpec::SamplingPoison)
                .inputs(InputSpec::Random)
                .network(NetworkSpec::LossyLinks { p_drop: 0.05 })
                .max_rounds(4_000)
                .seed(23),
        ),
    ]
}

#[test]
fn event_log_and_metrics_match_live_vs_replay() {
    for (label, builder) in pinned() {
        let o = observe_replay(builder.scenario());
        assert_eq!(
            o.live, o.replayed,
            "{label}: replayed result diverged from the live run"
        );
        assert!(o.is_faithful(), "{label}: replay not faithful");
        assert!(
            o.channels_match(),
            "{label}: observability channels diverged between live and replay"
        );
        assert_eq!(
            o.live_events.render(),
            o.replayed_events.render(),
            "{label}: event log bytes"
        );
        assert_eq!(
            o.live_metrics.render(),
            o.replayed_metrics.render(),
            "{label}: metrics bytes"
        );
    }
}

#[test]
fn observation_does_not_perturb_results() {
    // Probes observe only: the observed trial's result equals the
    // builder facade's plain run, scenario by scenario.
    for (label, builder) in pinned() {
        let observed = observe_scenario(builder.scenario());
        let plain = builder.clone().run();
        assert_eq!(observed.result, plain, "{label}: probe perturbed the run");
        assert!(
            !observed.events.is_empty(),
            "{label}: no events were recorded"
        );
    }
}

#[test]
fn observation_is_deterministic() {
    let scenarios = pinned();
    let s = scenarios[1].1.scenario();
    let a = observe_scenario(s);
    let b = observe_scenario(s);
    assert_eq!(a.events.render(), b.events.render());
    assert_eq!(a.metrics.render(), b.metrics.render());
}
