//! The causal-provenance contract: decision cones, adversary-influence
//! sets, and per-node traffic profiles are deterministic, replayable,
//! and *correct* — checked three ways:
//!
//! 1. **Live vs replay** on the six pinned scenarios: every provenance
//!    artifact (per-node summary, DOT, line-JSON, flow-annotated Chrome
//!    trace) byte-identical between a live run and its trace replay.
//! 2. **Differential** against a naive `Vec<bool>` transitive-closure
//!    model: the probe's bitset frontier propagation — including the
//!    saturation fast path — must agree with the obvious O(n³)
//!    per-round closure on synthetic arrival schedules.
//! 3. **Conservation**: per-node traffic counters must sum to the
//!    engine's global tallies exactly.
//!
//! Plus the blame golden: the greedy corrupted-sender cover for the
//! known Phase-King disagreement is pinned node for node.

use adaptive_ba::harness::shrink_violation;
use adaptive_ba::obs::ProvenanceProbe;
use adaptive_ba::sim::{ArrivalScan, NodeId, Probe, Round, SimConfig};
use adaptive_ba::{
    provenance_replay, provenance_scenario, AttackSpec, DelayScheduler, InputSpec, NetworkSpec,
    ProtocolSpec, ScenarioBuilder,
};

/// The six pinned scenarios: every network family, mixed protocols and
/// attacks, fixed seeds (kept in lockstep with `tests/trace_replay.rs`
/// and `tests/obs_determinism.rs`).
fn pinned() -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        (
            "paper-lv × full-attack × sync",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(42),
        ),
        (
            "chor-coan × split-vote × lossy",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .adversary(AttackSpec::SplitVote)
                .network(NetworkSpec::LossyLinks { p_drop: 0.15 })
                .max_rounds(300)
                .seed(7),
        ),
        (
            "phase-king × static-mirror × bounded-delay",
            ScenarioBuilder::new(13, 4)
                .protocol(ProtocolSpec::PhaseKing)
                .adversary(AttackSpec::StaticMirror)
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 2,
                    scheduler: DelayScheduler::Random,
                })
                .max_rounds(200)
                .seed(3),
        ),
        (
            "paper × crash × bounded-delay-adv",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::Paper { alpha: 2.0 })
                .adversary(AttackSpec::Crash { per_round: 1 })
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 3,
                    scheduler: DelayScheduler::DelayHonest,
                })
                .max_rounds(300)
                .seed(11),
        ),
        (
            "common-coin × coin-killer × partition",
            ScenarioBuilder::new(24, 6)
                .protocol(ProtocolSpec::CommonCoin)
                .adversary(AttackSpec::CoinKiller)
                .network(NetworkSpec::Partition {
                    groups: 2,
                    heal_round: 3,
                })
                .max_rounds(100)
                .seed(19),
        ),
        (
            "sampling-majority × poison × lossy",
            ScenarioBuilder::new(32, 2)
                .protocol(ProtocolSpec::SamplingMajority { iters: 0 })
                .adversary(AttackSpec::SamplingPoison)
                .inputs(InputSpec::Random)
                .network(NetworkSpec::LossyLinks { p_drop: 0.05 })
                .max_rounds(4_000)
                .seed(23),
        ),
    ]
}

#[test]
fn provenance_artifacts_match_live_vs_replay() {
    for (label, builder) in pinned() {
        let r = provenance_replay(builder.scenario());
        assert_eq!(
            r.live, r.replayed,
            "{label}: replayed result diverged from the live run"
        );
        assert!(r.is_faithful(), "{label}: replay not faithful");
        assert!(
            r.artifacts_match(),
            "{label}: provenance artifacts diverged between live and replay"
        );
        assert_eq!(
            r.live_provenance.summary(),
            r.replayed_provenance.summary(),
            "{label}: summary bytes"
        );
        assert_eq!(
            r.live_provenance.dot_graph(),
            r.replayed_provenance.dot_graph(),
            "{label}: DOT bytes"
        );
        assert_eq!(
            r.live_provenance.jsonl_graph(),
            r.replayed_provenance.jsonl_graph(),
            "{label}: line-JSON bytes"
        );
    }
}

#[test]
fn provenance_is_deterministic_across_runs() {
    for (label, builder) in pinned().into_iter().take(3) {
        let s = builder.scenario();
        let a = provenance_scenario(s);
        let b = provenance_scenario(s);
        assert_eq!(a.result, b.result, "{label}: results");
        assert_eq!(a.summary(), b.summary(), "{label}: summary bytes");
        assert_eq!(a.dot_graph(), b.dot_graph(), "{label}: DOT bytes");
        assert_eq!(a.jsonl_graph(), b.jsonl_graph(), "{label}: JSON bytes");
        assert_eq!(a.chrome_trace(), b.chrome_trace(), "{label}: trace bytes");
    }
}

/// Satellite: the per-node traffic counters are a *partition* of the
/// engine's global tallies — summing over nodes must reproduce
/// `RunMetrics` exactly, message for message and bit for bit.
#[test]
fn per_node_traffic_sums_to_global_tallies() {
    for (label, builder) in pinned() {
        let t = provenance_scenario(builder.scenario());
        let p = &t.provenance;
        let sent_msgs: u64 = p.sent_msgs().iter().sum();
        let sent_bits: u64 = p.sent_bits().iter().sum();
        let recv_msgs: u64 = p.recv_msgs().iter().sum();
        assert_eq!(
            sent_msgs, t.result.messages as u64,
            "{label}: sum(sent_msgs) != total_messages"
        );
        assert_eq!(
            sent_bits, t.result.bits as u64,
            "{label}: sum(sent_bits) != total_bits"
        );
        assert_eq!(
            recv_msgs, t.result.delivered as u64,
            "{label}: sum(recv_msgs) != total_delivered"
        );
    }
}

// ---------------------------------------------------------------------
// Differential: probe bitset closures vs a naive Vec<bool> model.
// ---------------------------------------------------------------------

/// The obvious reference model: dense boolean matrices, one full
/// O(n²·|in-set|) pass per round, no frontier sets, no saturation
/// shortcut. Freezing snapshots the rows exactly like the probe does.
/// A frozen naive cone: `(members, influence, depth,
/// corrupted-at-freeze)`.
type NaiveCone = (Vec<bool>, Vec<bool>, u64, Vec<bool>);

struct Naive {
    n: usize,
    anc: Vec<Vec<bool>>,
    bad: Vec<Vec<bool>>,
    depth: Vec<u64>,
    corrupted: Vec<bool>,
    frozen: Vec<Option<NaiveCone>>,
}

impl Naive {
    fn new(n: usize) -> Self {
        let mut anc = vec![vec![false; n]; n];
        for (i, row) in anc.iter_mut().enumerate() {
            row[i] = true; // every node starts in its own causal past
        }
        Naive {
            n,
            anc,
            bad: vec![vec![false; n]; n],
            depth: vec![0; n],
            corrupted: vec![false; n],
            frozen: vec![None; n],
        }
    }

    /// One round: receiver `r`'s in-set is `(base \ knocked(r)) ∪
    /// extra(r)`; its closures absorb each in-set sender's previous
    /// closures, plus the sender itself into `bad` if corrupted at
    /// send time; depth is the longest incoming chain plus one.
    fn step(&mut self, base: &[bool], knocked: &[(usize, usize)], extra: &[(usize, usize)]) {
        let anc_prev = self.anc.clone();
        let bad_prev = self.bad.clone();
        let depth_prev = self.depth.clone();
        for r in 0..self.n {
            let mut in_set = base.to_vec();
            for &(kr, ks) in knocked {
                if kr == r {
                    in_set[ks] = false;
                }
            }
            for &(er, es) in extra {
                if er == r {
                    in_set[es] = true;
                }
            }
            let mut best: Option<u64> = None;
            for s in 0..self.n {
                if !in_set[s] {
                    continue;
                }
                for k in 0..self.n {
                    self.anc[r][k] |= anc_prev[s][k];
                    self.bad[r][k] |= bad_prev[s][k];
                }
                if self.corrupted[s] {
                    self.bad[r][s] = true;
                }
                best = Some(best.map_or(depth_prev[s], |b: u64| b.max(depth_prev[s])));
            }
            if let Some(b) = best {
                self.depth[r] = self.depth[r].max(b + 1);
            }
        }
    }

    fn freeze(&mut self, i: usize) {
        self.frozen[i] = Some((
            self.anc[i].clone(),
            self.bad[i].clone(),
            self.depth[i],
            self.corrupted.clone(),
        ));
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Drives the probe's arrival hook directly with a synthetic schedule
/// (mixing full broadcasts, partial bases, knocked/extra deviations,
/// and growing corruption — the mix exercises both the saturation fast
/// path and the per-receiver slow path), mirrors every round into the
/// naive model, and requires the frozen cones to agree exactly.
#[test]
fn cone_closures_match_naive_transitive_closure() {
    for n in [1usize, 2, 17, 64] {
        let mut probe = ProvenanceProbe::new();
        probe.run_start(&SimConfig::new(n, n / 4));
        let mut naive = Naive::new(n);
        let mut scan = ArrivalScan::new();
        let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ n as u64;
        let rounds = 24u64;
        let freeze_at = rounds / 2;
        for round in 0..rounds {
            // Pick the round's shape. Repeated full-broadcast clean
            // rounds saturate the closures (fast path); deviation and
            // corruption rounds force the slow path.
            let mode = xorshift(&mut rng) % 5;
            let mut base = vec![false; n];
            match mode {
                0 | 1 => base.fill(true), // full broadcast
                2 => {
                    for b in base.iter_mut() {
                        *b = !xorshift(&mut rng).is_multiple_of(3);
                    }
                }
                3 => base[xorshift(&mut rng) as usize % n] = true,
                _ => {} // silent round
            }
            let mut knocked = Vec::new();
            let mut extra = Vec::new();
            if mode == 1 && n > 1 {
                // Deviations: knock a few (receiver, base-sender) pairs
                // out, add a few explicit point-to-point arrivals.
                for _ in 0..3 {
                    let r = xorshift(&mut rng) as usize % n;
                    let s = xorshift(&mut rng) as usize % n;
                    if base[s] {
                        knocked.push((r, s));
                    }
                    let (er, es) = (
                        xorshift(&mut rng) as usize % n,
                        xorshift(&mut rng) as usize % n,
                    );
                    if !base[es] {
                        extra.push((er, es));
                    }
                }
            }
            // Corruption grows monotonically, as under a real ledger.
            if xorshift(&mut rng).is_multiple_of(4) {
                naive.corrupted[xorshift(&mut rng) as usize % n] = true;
            }

            scan.reset(n);
            for (s, &b) in base.iter().enumerate() {
                if b {
                    scan.mark_base(s, 8);
                }
            }
            for &(r, s) in &knocked {
                scan.mark_knocked(r, s);
            }
            for &(r, s) in &extra {
                scan.mark_extra(r, s);
            }
            scan.set_corrupted(&naive.corrupted);
            probe.arrivals(Round::new(round), &scan);
            naive.step(&base, &knocked, &extra);

            if round == freeze_at {
                // Freeze a couple of cones mid-run, like halting nodes.
                for i in [0, n / 2] {
                    probe.halt(Round::new(round), NodeId::new(i as u32), Some(true));
                    naive.freeze(i);
                }
            }
        }
        // Freeze everything else at the end.
        for i in 0..n {
            if naive.frozen[i].is_none() {
                probe.halt(Round::new(rounds - 1), NodeId::new(i as u32), Some(false));
                naive.freeze(i);
            }
        }

        for i in 0..n {
            let node = NodeId::new(i as u32);
            let (members, influence, depth, corrupted) =
                naive.frozen[i].as_ref().expect("frozen above");
            let stats = probe.explain(node).expect("cone frozen");
            let naive_width = members.iter().filter(|&&m| m).count() as u64;
            let naive_influenced = influence.iter().filter(|&&m| m).count() as u64;
            let naive_corr = members
                .iter()
                .zip(corrupted)
                .filter(|(&m, &c)| m && c)
                .count() as u64;
            assert_eq!(stats.width, naive_width, "n={n} node {i}: width");
            assert_eq!(stats.depth, *depth, "n={n} node {i}: depth");
            assert_eq!(
                stats.corrupted_ancestors, naive_corr,
                "n={n} node {i}: corrupted ancestors"
            );
            assert_eq!(
                stats.influenced_by, naive_influenced,
                "n={n} node {i}: influence"
            );
            // Exact membership, both directions, every pair.
            let got: Vec<usize> = probe.cone_members(node).iter().map(|m| m.index()).collect();
            let want: Vec<usize> = (0..n).filter(|&k| members[k]).collect();
            assert_eq!(got, want, "n={n} node {i}: cone members");
            let got: Vec<usize> = probe.influencers(node).iter().map(|m| m.index()).collect();
            let want: Vec<usize> = (0..n).filter(|&k| influence[k]).collect();
            assert_eq!(got, want, "n={n} node {i}: influencers");
            for k in 0..n {
                let m = NodeId::new(k as u32);
                assert_eq!(probe.in_cone(node, m), members[k], "n={n} {i}∋{k}");
                assert_eq!(probe.influenced(node, m), influence[k], "n={n} {i}←{k}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Blame golden.
// ---------------------------------------------------------------------

/// The known-violating scenario (same as `tests/oracle_goldens.rs`):
/// Phase-King under the adversarial bounded-delay scheduler with a
/// static equivocator decides different values.
fn violating() -> ScenarioBuilder {
    ScenarioBuilder::new(13, 4)
        .protocol(ProtocolSpec::PhaseKing)
        .adversary(AttackSpec::StaticMirror)
        .inputs(InputSpec::Split)
        .network(NetworkSpec::BoundedDelay {
            max_delay: 2,
            scheduler: DelayScheduler::DelayHonest,
        })
        .max_rounds(200)
        .seed(5)
}

#[test]
fn blame_for_known_violation_is_pinned() {
    let repro = shrink_violation(violating().scenario()).expect("scenario violates");
    let t = provenance_scenario(&repro.shrunk);
    assert!(!t.result.agreement, "shrunken repro still disagrees");
    assert!(!t.blame.is_empty(), "a disagreement must assign blame");
    // Golden: the exact greedy cover. A drift here means the engine,
    // attack, shrinker, or blame semantics changed — update
    // deliberately, with the repro artifacts in hand.
    let ids = |v: &[NodeId]| v.iter().map(|m| m.index()).collect::<Vec<_>>();
    assert_eq!(
        t.blame.render(),
        "blamed=[0] targets=[2,4,6] uncovered=[]",
        "blame drifted for the shrunken Phase-King disagreement"
    );
    assert_eq!(ids(&t.blame.targets), [2, 4, 6], "minority deciders");
    assert_eq!(ids(&t.blame.blamed), [0], "one equivocator covers all");
    assert!(t.blame.uncovered.is_empty(), "fully attributable");
    // The blamed equivocator influences every target's decision cone.
    for &target in &t.blame.targets {
        assert!(
            t.provenance.influenced(target, t.blame.blamed[0]),
            "blamed node must be in bad({target:?})"
        );
    }
    // Stable across repeated runs in-process.
    let again = provenance_scenario(&repro.shrunk);
    assert_eq!(t.blame, again.blame, "blame not deterministic");
    assert_eq!(t.summary(), again.summary(), "summary not deterministic");
}

#[test]
fn clean_runs_assign_no_blame() {
    let t = provenance_scenario(
        ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .seed(1)
            .scenario(),
    );
    assert!(t.result.agreement);
    assert!(t.blame.is_empty(), "agreement ⇒ empty blame");
    assert!(
        t.summary().contains("node v0"),
        "summary has per-node lines"
    );
}
