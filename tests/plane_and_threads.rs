//! The two new execution axes — in-round thread count and message
//! plane — must be *invisible* in every deterministic artifact.
//!
//! Thread invariance: the sharded in-round step partitions nodes into
//! fixed ID ranges and merges emissions, metrics, and probe tallies in
//! ID order, so `TrialResult`s, oracle verdicts, rendered event logs,
//! and metrics registries are byte-identical at any thread count. These
//! tests pin threads = 1 against threads = 4 on the same six scenarios
//! as `tests/trace_replay.rs` / `tests/obs_determinism.rs`.
//!
//! Plane equivalence: routing a committee-family scenario through the
//! bit-packed binary plane must reproduce the dense `TrialResult`
//! exactly — same verdicts, same round/message/bit accounting — and a
//! non-committee protocol asked for the packed plane silently stays
//! dense, so the switch is safe to set campaign-wide.

use adaptive_ba::harness::{check_scenario, replay_scenario};
use adaptive_ba::{
    observe_replay, observe_scenario, AttackSpec, CampaignSpec, DelayScheduler, InputSpec,
    NetworkSpec, PlaneSpec, ProtocolSpec, RoundCap, RunOptions, ScenarioBuilder, StopRule,
};

/// The six pinned scenarios (lockstep with `tests/trace_replay.rs` and
/// `tests/obs_determinism.rs`).
fn pinned() -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        (
            "paper-lv × full-attack × sync",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(42),
        ),
        (
            "chor-coan × split-vote × lossy",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .adversary(AttackSpec::SplitVote)
                .network(NetworkSpec::LossyLinks { p_drop: 0.15 })
                .max_rounds(300)
                .seed(7),
        ),
        (
            "phase-king × static-mirror × bounded-delay",
            ScenarioBuilder::new(13, 4)
                .protocol(ProtocolSpec::PhaseKing)
                .adversary(AttackSpec::StaticMirror)
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 2,
                    scheduler: DelayScheduler::Random,
                })
                .max_rounds(200)
                .seed(3),
        ),
        (
            "paper × crash × bounded-delay-adv",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::Paper { alpha: 2.0 })
                .adversary(AttackSpec::Crash { per_round: 1 })
                .network(NetworkSpec::BoundedDelay {
                    max_delay: 3,
                    scheduler: DelayScheduler::DelayHonest,
                })
                .max_rounds(300)
                .seed(11),
        ),
        (
            "common-coin × coin-killer × partition",
            ScenarioBuilder::new(24, 6)
                .protocol(ProtocolSpec::CommonCoin)
                .adversary(AttackSpec::CoinKiller)
                .network(NetworkSpec::Partition {
                    groups: 2,
                    heal_round: 3,
                })
                .max_rounds(100)
                .seed(19),
        ),
        (
            "sampling-majority × poison × lossy",
            ScenarioBuilder::new(32, 2)
                .protocol(ProtocolSpec::SamplingMajority { iters: 0 })
                .adversary(AttackSpec::SamplingPoison)
                .inputs(InputSpec::Random)
                .network(NetworkSpec::LossyLinks { p_drop: 0.05 })
                .max_rounds(4_000)
                .seed(23),
        ),
    ]
}

#[test]
fn trial_results_are_thread_invariant() {
    for (label, builder) in pinned() {
        let serial = builder.clone().threads(1).run();
        let sharded = builder.clone().threads(4).run();
        assert_eq!(serial, sharded, "{label}: result depends on thread count");
    }
}

#[test]
fn oracle_verdicts_are_thread_invariant() {
    for (label, builder) in pinned() {
        let serial = check_scenario(builder.clone().threads(1).scenario());
        let sharded = check_scenario(builder.clone().threads(4).scenario());
        assert_eq!(
            serial.result, sharded.result,
            "{label}: checked result depends on thread count"
        );
        assert_eq!(
            serial.oracle, sharded.oracle,
            "{label}: oracle report depends on thread count"
        );
    }
}

#[test]
fn obs_artifacts_are_thread_invariant() {
    for (label, builder) in pinned() {
        let serial = observe_scenario(builder.clone().threads(1).scenario());
        let sharded = observe_scenario(builder.clone().threads(4).scenario());
        assert_eq!(serial.result, sharded.result, "{label}: observed result");
        assert_eq!(
            serial.events.render(),
            sharded.events.render(),
            "{label}: event log bytes depend on thread count"
        );
        assert_eq!(
            serial.metrics.render(),
            sharded.metrics.render(),
            "{label}: metrics bytes depend on thread count"
        );
    }
}

#[test]
fn replay_stays_faithful_under_sharding() {
    for (label, builder) in pinned() {
        let o = observe_replay(builder.clone().threads(4).scenario());
        assert_eq!(o.live, o.replayed, "{label}: sharded replay diverged");
        assert!(o.is_faithful(), "{label}: sharded replay not faithful");
        assert!(
            o.channels_match(),
            "{label}: sharded observability channels diverged"
        );
    }
}

/// The committee-family subset of the pinned scenarios — the ones the
/// packed plane actually routes (the coin, sampling, and Phase-King
/// entries have no `BaMsg` codec and stay dense by construction).
fn committee_pinned() -> Vec<(&'static str, ScenarioBuilder)> {
    pinned()
        .into_iter()
        .filter(|(label, _)| label.starts_with("paper") || label.starts_with("chor-coan"))
        .collect()
}

#[test]
fn packed_plane_reproduces_dense_trial_results() {
    for (label, builder) in committee_pinned() {
        let dense = builder.clone().plane(PlaneSpec::Dense).run();
        let packed = builder.clone().plane(PlaneSpec::Packed).run();
        assert_eq!(dense, packed, "{label}: packed plane diverged from dense");
    }
}

#[test]
fn packed_plane_is_thread_invariant() {
    for (label, builder) in committee_pinned() {
        let serial = builder.clone().plane(PlaneSpec::Packed).threads(1).run();
        let sharded = builder.clone().plane(PlaneSpec::Packed).threads(4).run();
        assert_eq!(
            serial, sharded,
            "{label}: packed result depends on thread count"
        );
    }
}

#[test]
fn packed_request_on_non_committee_protocols_stays_dense() {
    for (label, builder) in pinned() {
        if committee_pinned().iter().any(|(l, _)| *l == label) {
            continue;
        }
        let dense = builder.clone().run();
        let packed = builder.clone().plane(PlaneSpec::Packed).run();
        assert_eq!(dense, packed, "{label}: packed fallback changed the run");
    }
}

/// The sampled-family scenarios the sparse plane routes (sampling
/// majority and King–Saia; everything else falls back dense).
fn sampled_pinned() -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        (
            "sampling-majority × poison × sync",
            ScenarioBuilder::new(32, 2)
                .protocol(ProtocolSpec::SamplingMajority { iters: 8 })
                .adversary(AttackSpec::SamplingPoison)
                .inputs(InputSpec::Random)
                .max_rounds(2_000)
                .seed(29),
        ),
        (
            "king-saia × crash × sync",
            ScenarioBuilder::new(25, 6)
                .protocol(ProtocolSpec::KingSaia { iters: 0 })
                .adversary(AttackSpec::Crash { per_round: 1 })
                .inputs(InputSpec::Random)
                .max_rounds(2_000)
                .seed(31),
        ),
        (
            "king-saia × full-attack-capped × lossy",
            ScenarioBuilder::new(16, 5)
                .protocol(ProtocolSpec::KingSaia { iters: 12 })
                .adversary(AttackSpec::FullAttackCapped { q: 2 })
                .network(NetworkSpec::LossyLinks { p_drop: 0.1 })
                .max_rounds(2_000)
                .seed(37),
        ),
    ]
}

#[test]
fn sparse_plane_reproduces_dense_trial_results() {
    for (label, builder) in sampled_pinned() {
        let dense = builder.clone().plane(PlaneSpec::Dense).run();
        let sparse = builder.clone().plane(PlaneSpec::Sparse).run();
        assert_eq!(dense, sparse, "{label}: sparse plane diverged from dense");
    }
}

#[test]
fn sparse_plane_is_thread_invariant() {
    for (label, builder) in sampled_pinned() {
        let serial = builder.clone().plane(PlaneSpec::Sparse).threads(1).run();
        let sharded = builder.clone().plane(PlaneSpec::Sparse).threads(4).run();
        assert_eq!(
            serial, sharded,
            "{label}: sparse result depends on thread count"
        );
    }
}

#[test]
fn sparse_live_matches_recorded_replay() {
    // Trace recording rides the dense drives; the sparse plane must
    // produce exactly the trial the recorded replay re-derives.
    for (label, builder) in sampled_pinned() {
        let sparse_live = builder.clone().plane(PlaneSpec::Sparse).run();
        let b = builder.clone();
        let replay = replay_scenario(b.scenario());
        assert!(replay.is_faithful(), "{label}: replay not faithful");
        assert_eq!(
            sparse_live, replay.replayed,
            "{label}: sparse live run diverged from the recorded replay"
        );
    }
}

#[test]
fn sparse_request_on_non_sampled_protocols_stays_dense() {
    for (label, builder) in pinned() {
        if label.starts_with("sampling") {
            continue; // routed for real, covered above
        }
        let dense = builder.clone().run();
        let sparse = builder.clone().plane(PlaneSpec::Sparse).run();
        assert_eq!(dense, sparse, "{label}: sparse fallback changed the run");
    }
}

#[test]
fn sparse_campaign_artifacts_are_worker_invariant() {
    let spec = CampaignSpec::new("sparse-worker-invariance")
        .sizes(&[(32, 2), (64, 4)])
        .protocols(&[
            ProtocolSpec::SamplingMajority { iters: 8 },
            ProtocolSpec::KingSaia { iters: 8 },
        ])
        .attacks(&[
            AttackSpec::Crash { per_round: 1 },
            AttackSpec::SamplingPoison,
        ])
        .round_cap(RoundCap::Fixed(300))
        .stop(StopRule::fixed(2))
        .oracles(true)
        .plane(PlaneSpec::Sparse)
        .seed(17);
    let serial = spec.run_with(&RunOptions {
        workers: 1,
        ..RunOptions::default()
    });
    let parallel = spec.run_with(&RunOptions {
        workers: 4,
        ..RunOptions::default()
    });
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn packed_plane_covers_every_committee_attack() {
    // Sweep the whole attack axis on one committee configuration: a
    // plane switch must never change which adversary runs or what it
    // does. (CoinKiller degrades to the full attack on both planes.)
    for attack in [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::StaticMirror,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttack,
        AttackSpec::FullAttackFrugal,
        AttackSpec::FullAttackCapped { q: 2 },
        AttackSpec::CoinKiller,
    ] {
        let base = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(attack)
            .max_rounds(300)
            .seed(91);
        let dense = base.clone().run();
        let packed = base.clone().plane(PlaneSpec::Packed).run();
        assert_eq!(dense, packed, "{attack:?}: packed plane diverged");
    }
}
