//! Integration: the `ScenarioBuilder` facade — the one blessed way to
//! run an experiment — over the protocol × adversary matrix the facade
//! contract guarantees, plus determinism of the typed results.

use adaptive_ba::sim::InfoModel;
use adaptive_ba::{AttackSpec, BatchReport, InputSpec, ProtocolSpec, ScenarioBuilder};

/// {CommitteeBa (whp + Las Vegas), PhaseKing} × {Benign, StaticByzantine,
/// AdaptiveCrash}: agreement and validity hold outright on
/// honest-majority configurations.
#[test]
fn committee_and_phase_king_vs_generic_adversaries() {
    let protocols = [
        ProtocolSpec::Paper { alpha: 2.0 },
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::PhaseKing,
    ];
    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::StaticMirror,
        AttackSpec::Crash { per_round: 1 },
    ];
    for &(n, t) in &[(7usize, 2usize), (16, 5), (31, 10)] {
        for protocol in protocols {
            for attack in attacks {
                for value in [false, true] {
                    let r = ScenarioBuilder::new(n, t)
                        .protocol(protocol)
                        .adversary(attack)
                        .inputs(InputSpec::AllSame(value))
                        .seed(3)
                        .max_rounds(40_000)
                        .run();
                    let ctx = format!("{}/{} n={n} t={t}", protocol.name(), attack.name());
                    assert!(r.terminated, "{ctx}: no termination");
                    assert!(r.agreement, "{ctx}: agreement broken");
                    assert_eq!(r.validity, Some(true), "{ctx}: validity broken");
                    assert_eq!(r.decision, Some(value), "{ctx}: wrong decision");
                    assert!(r.correct(), "{ctx}");
                }
            }
        }
    }
}

/// Same seed → bit-identical `TrialResult`, across protocols, attacks,
/// and info models; different seeds perturb the randomized protocols.
#[test]
fn same_seed_gives_identical_trial_results() {
    for protocol in [
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::CommonCoin,
    ] {
        for info in [InfoModel::Rushing, InfoModel::NonRushing] {
            let b = ScenarioBuilder::new(31, 10)
                .protocol(protocol)
                .adversary(AttackSpec::FullAttack)
                .inputs(InputSpec::Random)
                .info_model(info)
                .seed(0xFEED)
                .max_rounds(40_000);
            assert_eq!(b.run(), b.run(), "{}", protocol.name());
        }
    }
    // Batches are deterministic too, element by element.
    let b = ScenarioBuilder::new(16, 5)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::SplitVote)
        .seed(11)
        .trials(8);
    let x: BatchReport = b.run_batch();
    let y: BatchReport = b.run_batch();
    assert_eq!(x, y);
    // ...and trial i of a batch equals a single run at seed + i.
    let single = ScenarioBuilder::new(16, 5)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::SplitVote)
        .seed(11 + 3)
        .run();
    assert_eq!(x.results[3], single);
}

/// The builder covers every protocol in the registry without panicking,
/// including the non-agreement workloads.
#[test]
fn every_protocol_spec_runs_through_the_facade() {
    for protocol in [
        ProtocolSpec::Paper { alpha: 2.0 },
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
        ProtocolSpec::BenOrPrivate,
        ProtocolSpec::PhaseKing,
        ProtocolSpec::CommonCoin,
        ProtocolSpec::SamplingMajority { iters: 0 },
    ] {
        let r = ScenarioBuilder::new(16, 5)
            .protocol(protocol)
            .adversary(AttackSpec::Benign)
            .inputs(InputSpec::AllSame(true))
            .max_rounds(20_000)
            .run();
        assert!(r.terminated, "{}: no termination", protocol.name());
        assert!(r.agreement, "{}: no agreement", protocol.name());
    }
}
