//! Integration: the adversary hierarchy of Section 1 is measurable —
//! stronger information/adaptivity buys more rounds, and the rushing
//! full-information adversary is the strongest implemented.

use adaptive_ba::sim::InfoModel;
use adaptive_ba::{AttackSpec, ProtocolSpec, ScenarioBuilder};

fn mean_rounds(attack: AttackSpec, info: InfoModel, trials: usize) -> f64 {
    let s = ScenarioBuilder::new(64, 21)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(attack)
        .info_model(info)
        .seed(4242)
        .max_rounds(40_000);
    let results = s.trials(trials).run_batch().results;
    assert!(
        results.iter().all(|r| r.terminated && r.agreement),
        "{:?} broke the protocol",
        attack
    );
    results.iter().map(|r| r.rounds as f64).sum::<f64>() / trials as f64
}

#[test]
fn adaptive_byzantine_beats_static_and_crash() {
    let trials = 12;
    let benign = mean_rounds(AttackSpec::Benign, InfoModel::Rushing, trials);
    let static_silent = mean_rounds(AttackSpec::StaticSilent, InfoModel::Rushing, trials);
    let full = mean_rounds(AttackSpec::FullAttack, InfoModel::Rushing, trials);
    assert!(
        full > benign,
        "full attack ({full}) must beat benign ({benign})"
    );
    assert!(
        full > static_silent,
        "full attack ({full}) must beat static ({static_silent})"
    );
}

#[test]
fn rushing_beats_non_rushing_for_the_full_attack() {
    let trials = 12;
    let rushing = mean_rounds(AttackSpec::FullAttack, InfoModel::Rushing, trials);
    let non_rushing = mean_rounds(AttackSpec::FullAttack, InfoModel::NonRushing, trials);
    assert!(
        rushing >= non_rushing,
        "rushing ({rushing}) must be at least as strong as non-rushing ({non_rushing})"
    );
}

#[test]
fn split_vote_is_within_full_attack() {
    let trials = 12;
    let split = mean_rounds(AttackSpec::SplitVote, InfoModel::Rushing, trials);
    let full = mean_rounds(AttackSpec::FullAttack, InfoModel::Rushing, trials);
    // The full attack subsumes split-vote's moves; allow sampling slack.
    assert!(
        full >= 0.8 * split,
        "full ({full}) unexpectedly much weaker than split-vote ({split})"
    );
}

#[test]
fn budgetless_adversary_is_harmless() {
    // t = 0: every attack degenerates to benign behaviour.
    for attack in [
        AttackSpec::StaticSilent,
        AttackSpec::Crash { per_round: 2 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttack,
    ] {
        let s = ScenarioBuilder::new(16, 0)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(attack)
            .seed(9);
        let results = s.trials(5).run_batch().results;
        for r in &results {
            assert_eq!(r.corruptions, 0);
            assert!(r.terminated && r.agreement);
            assert!(r.rounds <= 10, "{} rounds with t=0", r.rounds);
        }
    }
}
