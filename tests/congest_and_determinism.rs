//! Integration: CONGEST bandwidth compliance and bit-exact determinism.

use adaptive_ba::{AttackSpec, InputSpec, ProtocolSpec, ScenarioBuilder};

#[test]
fn congest_budget_holds_for_every_protocol() {
    // The paper's model allows O(log n) bits per edge per round; assert a
    // fixed constant multiple across protocols, sizes, and adversaries.
    for &(n, t) in &[(16usize, 5usize), (64, 21), (128, 42)] {
        let budget = (8.0 * (n as f64).log2()) as usize;
        for protocol in [
            ProtocolSpec::Paper { alpha: 2.0 },
            ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
            ProtocolSpec::ChorCoan { beta: 1.0 },
            ProtocolSpec::PhaseKing,
        ] {
            let s = ScenarioBuilder::new(n, t)
                .protocol(protocol)
                .adversary(AttackSpec::FullAttack)
                .seed(3)
                .max_rounds(40_000);
            let r = s.run();
            assert!(
                r.max_edge_bits <= budget,
                "{} n={n}: {} bits/edge/round (budget {budget})",
                protocol.name(),
                r.max_edge_bits
            );
        }
    }
}

#[test]
fn runs_are_bit_exact_reproducible() {
    for protocol in [
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
    ] {
        for attack in [AttackSpec::FullAttack, AttackSpec::Crash { per_round: 1 }] {
            let s = ScenarioBuilder::new(31, 10)
                .protocol(protocol)
                .adversary(attack)
                .inputs(InputSpec::Random)
                .seed(0xFEED)
                .max_rounds(40_000);
            let a = s.run();
            let b = s.run();
            assert_eq!(a, b, "{}/{}", protocol.name(), attack.name());
        }
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let base = ScenarioBuilder::new(31, 10)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::SplitVote)
        .max_rounds(40_000);
    let results = base.trials(16).run_batch().results;
    // aba-lint: allow(hash-nondeterminism) — distinctness count only; iteration order never observed
    let distinct_rounds: std::collections::HashSet<u64> =
        results.iter().map(|r| r.rounds).collect();
    assert!(
        distinct_rounds.len() > 1,
        "16 seeds produced identical round counts — randomness broken?"
    );
}

#[test]
fn message_totals_scale_with_n_squared_per_round() {
    // Sanity: per-round traffic of a broadcast protocol is ~n(n−1).
    let s = ScenarioBuilder::new(32, 0)
        .protocol(ProtocolSpec::Paper { alpha: 2.0 })
        .adversary(AttackSpec::Benign)
        .inputs(InputSpec::AllSame(true))
        .seed(1);
    let r = s.run();
    let per_round = r.messages as f64 / r.rounds as f64;
    let full = 32.0 * 31.0;
    assert!(
        per_round <= full + 1.0 && per_round >= 0.5 * full,
        "per-round messages {per_round} out of range (full broadcast {full})"
    );
}
