//! Integration: CONGEST bandwidth compliance and bit-exact determinism.

use adaptive_ba::harness::{run_many, run_scenario, AttackSpec, InputSpec, ProtocolSpec, Scenario};

#[test]
fn congest_budget_holds_for_every_protocol() {
    // The paper's model allows O(log n) bits per edge per round; assert a
    // fixed constant multiple across protocols, sizes, and adversaries.
    for &(n, t) in &[(16usize, 5usize), (64, 21), (128, 42)] {
        let budget = (8.0 * (n as f64).log2()) as usize;
        for protocol in [
            ProtocolSpec::Paper { alpha: 2.0 },
            ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
            ProtocolSpec::ChorCoan { beta: 1.0 },
            ProtocolSpec::PhaseKing,
        ] {
            let s = Scenario::new(n, t)
                .with_protocol(protocol)
                .with_attack(AttackSpec::FullAttack)
                .with_seed(3)
                .with_max_rounds(40_000);
            let r = run_scenario(&s);
            assert!(
                r.max_edge_bits <= budget,
                "{} n={n}: {} bits/edge/round (budget {budget})",
                protocol.name(),
                r.max_edge_bits
            );
        }
    }
}

#[test]
fn runs_are_bit_exact_reproducible() {
    for protocol in [
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
    ] {
        for attack in [AttackSpec::FullAttack, AttackSpec::Crash { per_round: 1 }] {
            let s = Scenario::new(31, 10)
                .with_protocol(protocol)
                .with_attack(attack)
                .with_inputs(InputSpec::Random)
                .with_seed(0xFEED)
                .with_max_rounds(40_000);
            let a = run_scenario(&s);
            let b = run_scenario(&s);
            assert_eq!(a, b, "{}/{}", protocol.name(), attack.name());
        }
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let base = Scenario::new(31, 10)
        .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .with_attack(AttackSpec::SplitVote)
        .with_max_rounds(40_000);
    let results = run_many(&base, 16);
    let distinct_rounds: std::collections::HashSet<u64> =
        results.iter().map(|r| r.rounds).collect();
    assert!(
        distinct_rounds.len() > 1,
        "16 seeds produced identical round counts — randomness broken?"
    );
}

#[test]
fn message_totals_scale_with_n_squared_per_round() {
    // Sanity: per-round traffic of a broadcast protocol is ~n(n−1).
    let s = Scenario::new(32, 0)
        .with_protocol(ProtocolSpec::Paper { alpha: 2.0 })
        .with_attack(AttackSpec::Benign)
        .with_inputs(InputSpec::AllSame(true))
        .with_seed(1);
    let r = run_scenario(&s);
    let per_round = r.messages as f64 / r.rounds as f64;
    let full = (32.0 * 31.0) as f64;
    assert!(
        per_round <= full + 1.0 && per_round >= 0.5 * full,
        "per-round messages {per_round} out of range (full broadcast {full})"
    );
}
