//! Integration: Theorem 2's early-termination clause — the protocol's
//! running time tracks the corruptions the adversary *actually* performs
//! (`q`), not the budget it was provisioned for (`t`).

use adaptive_ba::analysis::theory;
use adaptive_ba::{AttackSpec, ProtocolSpec, ScenarioBuilder};

fn mean_rounds(n: usize, t: usize, q: usize, trials: usize) -> f64 {
    let s = ScenarioBuilder::new(n, t)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::FullAttackCapped { q })
        .seed(1000)
        .max_rounds(40_000);
    let results = s.trials(trials).run_batch().results;
    assert!(results.iter().all(|r| r.terminated && r.agreement));
    results.iter().map(|r| r.rounds as f64).sum::<f64>() / trials as f64
}

#[test]
fn rounds_track_q_not_t() {
    let n = 64;
    let t = 21;
    let idle = mean_rounds(n, t, 0, 8);
    let light = mean_rounds(n, t, 4, 8);
    let heavy = mean_rounds(n, t, 21, 8);
    // A benign-in-practice adversary ends things almost immediately.
    assert!(idle <= 8.0, "q=0 took {idle} rounds");
    // More actual corruptions must cost more rounds on average.
    assert!(
        heavy >= light && light >= idle,
        "rounds not monotone in q: {idle} / {light} / {heavy}"
    );
}

#[test]
fn capped_attack_never_exceeds_q() {
    for q in [0usize, 3, 9] {
        let s = ScenarioBuilder::new(31, 10)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttackCapped { q })
            .seed(7)
            .max_rounds(40_000);
        for r in s.trials(6).run_batch().results {
            assert!(r.corruptions <= q, "q={q} but {} corrupted", r.corruptions);
        }
    }
}

#[test]
fn early_termination_stays_within_bound_shape() {
    // Measured rounds at cap q should stay within a constant multiple of
    // min{q² log n/n, q/log n} + the constant floor.
    let n = 64;
    let t = 21;
    for q in [4usize, 8, 16] {
        let measured = mean_rounds(n, t, q, 8);
        let bound = theory::early_termination_bound(n, q);
        // Generous constant: 2 rounds per phase, plus setup/farewell.
        let allowance = 8.0 * bound + 10.0;
        assert!(
            measured <= allowance,
            "q={q}: measured {measured} vs allowance {allowance}"
        );
    }
}
