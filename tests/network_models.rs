//! Network-subsystem invariants, end to end through the facade.
//!
//! Pinned here:
//! * **Synchronous equivalence** — with `NetworkSpec::Synchronous` (the
//!   default) the engine reproduces the pre-`aba-net` engine bit for
//!   bit: golden values captured on fixed seeds before the delivery
//!   stage existed, plus a live `PassThrough`-vs-`NetDelivery`
//!   comparison at the sim layer.
//! * **Determinism** — same seed, same results, under every
//!   `NetworkSpec`.
//! * **Conservation** — no message is duplicated or conjured:
//!   delivered + dropped never exceeds emitted, and models that never
//!   delay account for every message exactly.
//! * **Coverage** — every protocol × adversary combination runs end to
//!   end under every network model.

use adaptive_ba::net::{NetDelivery, Synchronous};
use adaptive_ba::prelude::*;
use adaptive_ba::{DelayScheduler, NetworkSpec};

const NETWORKS: [NetworkSpec; 5] = [
    NetworkSpec::Synchronous,
    NetworkSpec::LossyLinks { p_drop: 0.1 },
    NetworkSpec::BoundedDelay {
        max_delay: 2,
        scheduler: DelayScheduler::Random,
    },
    NetworkSpec::BoundedDelay {
        max_delay: 2,
        scheduler: DelayScheduler::DelayHonest,
    },
    NetworkSpec::Partition {
        groups: 2,
        heal_round: 6,
    },
];

/// Golden values captured from the engine *before* the network
/// subsystem existed (same scenarios, same seeds, default synchronous
/// network). Any drift here means the refactor changed synchronous
/// semantics.
#[test]
fn synchronous_matches_pre_network_engine_goldens() {
    struct Golden {
        n: usize,
        t: usize,
        seed: u64,
        protocol: ProtocolSpec,
        attack: AttackSpec,
        rounds: u64,
        decision: Option<bool>,
        corruptions: usize,
        messages: usize,
        bits: usize,
        max_edge_bits: usize,
    }
    let goldens = [
        Golden {
            n: 32,
            t: 10,
            seed: 11,
            protocol: ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            attack: AttackSpec::FullAttack,
            rounds: 24,
            decision: Some(false),
            corruptions: 10,
            messages: 19360,
            bits: 193788,
            max_edge_bits: 12,
        },
        Golden {
            n: 16,
            t: 5,
            seed: 3,
            protocol: ProtocolSpec::Paper { alpha: 2.0 },
            attack: AttackSpec::SplitVote,
            rounds: 14,
            decision: Some(true),
            corruptions: 5,
            messages: 2659,
            bits: 24966,
            max_edge_bits: 11,
        },
        Golden {
            n: 16,
            t: 5,
            seed: 7,
            protocol: ProtocolSpec::ChorCoan { beta: 1.0 },
            attack: AttackSpec::StaticMirror,
            rounds: 6,
            decision: Some(true),
            corruptions: 5,
            messages: 1470,
            bits: 12806,
            max_edge_bits: 10,
        },
        Golden {
            n: 16,
            t: 5,
            seed: 9,
            protocol: ProtocolSpec::PhaseKing,
            attack: AttackSpec::Crash { per_round: 1 },
            rounds: 18,
            decision: Some(true),
            corruptions: 5,
            messages: 1950,
            bits: 10530,
            max_edge_bits: 6,
        },
        Golden {
            n: 32,
            t: 5,
            seed: 13,
            protocol: ProtocolSpec::CommonCoin,
            attack: AttackSpec::CoinKiller,
            rounds: 1,
            decision: None,
            corruptions: 3,
            messages: 986,
            bits: 2958,
            max_edge_bits: 3,
        },
        Golden {
            n: 64,
            t: 4,
            seed: 21,
            protocol: ProtocolSpec::SamplingMajority { iters: 0 },
            attack: AttackSpec::SamplingPoison,
            rounds: 144,
            decision: Some(false),
            corruptions: 4,
            messages: 33865,
            bits: 239797,
            max_edge_bits: 9,
        },
    ];
    for g in goldens {
        let r = ScenarioBuilder::new(g.n, g.t)
            .protocol(g.protocol)
            .adversary(g.attack)
            .seed(g.seed)
            .max_rounds(4_000)
            .run();
        let name = g.protocol.name();
        assert_eq!(r.rounds, g.rounds, "{name}: rounds drifted");
        assert_eq!(r.decision, g.decision, "{name}: decision drifted");
        assert_eq!(r.corruptions, g.corruptions, "{name}: corruptions drifted");
        assert_eq!(r.messages, g.messages, "{name}: messages drifted");
        assert_eq!(r.bits, g.bits, "{name}: bits drifted");
        assert_eq!(
            r.max_edge_bits, g.max_edge_bits,
            "{name}: edge bits drifted"
        );
        // The synchronous network delivers everything it is offered.
        assert_eq!(r.delivered, r.messages, "{name}: sync must deliver all");
        assert_eq!((r.dropped, r.delayed), (0, 0), "{name}: sync never drops");
    }
}

/// The explicit `NetworkSpec::Synchronous` and the builder default are
/// the same thing.
#[test]
fn explicit_synchronous_equals_default() {
    let base = ScenarioBuilder::new(16, 5)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::FullAttack)
        .seed(5)
        .trials(4);
    let default = base.run_batch();
    let explicit = base.network(NetworkSpec::Synchronous).run_batch();
    assert_eq!(default.results, explicit.results);
}

/// At the sim layer, `NetDelivery<Synchronous>` and the engine's raw
/// `PassThrough` default produce identical reports — the transparent
/// fast path touches neither mailbox nor RNG.
#[test]
fn net_delivery_synchronous_equals_pass_through() {
    use adaptive_ba::agreement::{BaConfig, CommitteeBa};
    use adaptive_ba::attacks::{AdaptiveFullAttack, BudgetPolicy};

    for seed in [0u64, 1, 17, 255] {
        let (n, t) = (24, 7);
        let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let sim_cfg = SimConfig::new(n, t).with_seed(seed).with_max_rounds(2_000);
        let plain = Simulation::new(
            sim_cfg.clone(),
            CommitteeBa::network(&cfg, &inputs),
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
        )
        .run();
        let netted = Simulation::with_network(
            sim_cfg,
            CommitteeBa::network(&cfg, &inputs),
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
            NetDelivery::new(Synchronous, seed),
        )
        .run();
        assert_eq!(plain.rounds, netted.rounds, "seed {seed}");
        assert_eq!(plain.outputs, netted.outputs, "seed {seed}");
        assert_eq!(plain.honest, netted.honest, "seed {seed}");
        assert_eq!(plain.halt_rounds, netted.halt_rounds, "seed {seed}");
        assert_eq!(
            plain.corruptions_used, netted.corruptions_used,
            "seed {seed}"
        );
        assert_eq!(plain.metrics, netted.metrics, "seed {seed}");
    }
}

/// Same seed ⇒ same result, under every network model.
#[test]
fn every_network_is_deterministic_in_the_seed() {
    for net in NETWORKS {
        let b = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .network(net)
            .seed(31)
            .max_rounds(300)
            .trials(3);
        let a = b.run_batch();
        let c = b.run_batch();
        assert_eq!(a.results, c.results, "{} not deterministic", net.name());
    }
}

/// Message conservation: the network never creates traffic, and models
/// without queues account for every emitted message exactly.
#[test]
fn networks_conserve_messages() {
    for net in NETWORKS {
        let r = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .network(net)
            .seed(2)
            .max_rounds(300)
            .run();
        assert!(
            r.delivered + r.dropped <= r.messages,
            "{}: delivered {} + dropped {} > emitted {}",
            net.name(),
            r.delivered,
            r.dropped,
            r.messages
        );
        match net {
            // No queue: every message is either delivered or dropped.
            NetworkSpec::Synchronous
            | NetworkSpec::LossyLinks { .. }
            | NetworkSpec::Partition { .. } => {
                assert_eq!(
                    r.delivered + r.dropped,
                    r.messages,
                    "{}: unaccounted messages",
                    net.name()
                );
            }
            // Queued messages may outlive the run.
            NetworkSpec::BoundedDelay { .. } => {}
        }
    }
}

/// Acceptance: every protocol × adversary combination runs end to end
/// under every network model (no panics, no hangs; termination is not
/// required — adverse networks may legitimately exhaust the cap).
#[test]
fn full_matrix_runs_under_every_network() {
    let protocols = [
        ProtocolSpec::Paper { alpha: 2.0 },
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
        ProtocolSpec::BenOrPrivate,
        ProtocolSpec::PhaseKing,
        ProtocolSpec::CommonCoin,
        ProtocolSpec::SamplingMajority { iters: 4 },
    ];
    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::StaticMirror,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttack,
        AttackSpec::FullAttackFrugal,
        AttackSpec::FullAttackCapped { q: 2 },
        AttackSpec::CoinKiller,
        AttackSpec::SamplingPoison,
    ];
    for net in NETWORKS {
        for protocol in protocols {
            for attack in attacks {
                let r = ScenarioBuilder::new(16, 5)
                    .protocol(protocol)
                    .adversary(attack)
                    .network(net)
                    .seed(1)
                    .max_rounds(120)
                    .run();
                assert_eq!(r.network, net.name());
                assert!(
                    r.rounds > 0 && r.rounds <= 120,
                    "{}/{}/{} produced no rounds",
                    protocol.name(),
                    attack.name(),
                    net.name()
                );
            }
        }
    }
}

/// Cross-process determinism: a fixed-seed run under a randomized
/// network model reproduces a *committed* golden `TrialResult`, field
/// for field. The old mailbox stored per-recipient traffic in a
/// `RandomState`-keyed `HashMap`, whose iteration order varies between
/// processes — results were only reproducible within one process. The
/// dense mailbox iterates in receiver order by construction; this pin
/// holds across processes, machines, and (absent an intentional
/// contract change) commits.
#[test]
fn fixed_seed_network_runs_match_committed_goldens() {
    struct NetGolden {
        net: NetworkSpec,
        rounds: u64,
        corruptions: usize,
        messages: usize,
        bits: usize,
        max_edge_bits: usize,
        delivered: usize,
        dropped: usize,
        delayed: usize,
    }
    let goldens = [
        NetGolden {
            net: NetworkSpec::LossyLinks { p_drop: 0.05 },
            rounds: 150,
            corruptions: 5,
            messages: 26250,
            bits: 325766,
            max_edge_bits: 15,
            delivered: 24899,
            dropped: 1351,
            delayed: 0,
        },
        NetGolden {
            net: NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::Random,
            },
            rounds: 150,
            corruptions: 5,
            messages: 26625,
            bits: 330933,
            max_edge_bits: 15,
            delivered: 26269,
            dropped: 0,
            delayed: 42030,
        },
    ];
    for g in goldens {
        let r = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .network(g.net)
            .seed(42)
            .max_rounds(150)
            .run();
        let name = g.net.name();
        assert_eq!(r.rounds, g.rounds, "{name}: rounds drifted");
        assert!(!r.terminated, "{name}: committee BA stalls at the cap");
        assert!(r.agreement, "{name}: agreement drifted");
        assert_eq!(r.decision, None, "{name}: decision drifted");
        assert_eq!(r.corruptions, g.corruptions, "{name}: corruptions drifted");
        assert_eq!(r.messages, g.messages, "{name}: messages drifted");
        assert_eq!(r.bits, g.bits, "{name}: bits drifted");
        assert_eq!(
            r.max_edge_bits, g.max_edge_bits,
            "{name}: edge bits drifted"
        );
        assert_eq!(r.delivered, g.delivered, "{name}: delivered drifted");
        assert_eq!(r.dropped, g.dropped, "{name}: dropped drifted");
        assert_eq!(r.delayed, g.delayed, "{name}: delayed drifted");
        assert_eq!(r.agree_fraction, 1.0, "{name}: agree fraction drifted");
    }
}

/// A partition that never heals keeps the paper protocol from global
/// agreement... but once healed in time, agreement is reached. The
/// model must make a visible difference.
#[test]
fn partition_visibly_disturbs_runs() {
    let healed = ScenarioBuilder::new(16, 0)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::Benign)
        .network(NetworkSpec::Partition {
            groups: 2,
            heal_round: 4,
        })
        .max_rounds(400)
        .run();
    assert!(healed.terminated, "healed partition should still terminate");
    assert!(healed.agreement);
    assert!(healed.dropped > 0, "pre-heal rounds must drop traffic");
}
